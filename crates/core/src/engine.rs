//! The batch DC engine: one configurable entry point for every solve shape.
//!
//! [`DcEngine`] replaced the per-solver constructor zoo with a single
//! builder — since v1 it is the only public way to assemble a solve:
//!
//! ```
//! use rlpta_core::{DcEngine, PtaKind, SolveBudget, Stepping};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let circuit = rlpta_netlist::parse(
//!     "clamp\nV1 in 0 5\nR1 in out 1k\nD1 out 0 DX\n.model DX D(IS=1e-14)",
//! )?;
//! let engine = DcEngine::builder()
//!     .kind(PtaKind::cepta())
//!     .stepping(Stepping::default())
//!     .budget(SolveBudget::UNLIMITED)
//!     .threads(1)
//!     .build();
//! let solution = engine.solve(&circuit)?;
//! assert!(solution.stats.converged);
//! # Ok(())
//! # }
//! ```
//!
//! Beyond single solves, the engine runs *batches* — independent jobs on a
//! vendored work-stealing thread pool (`rlpta-threadpool`) with
//! deterministic, submission-ordered results:
//!
//! * [`DcEngine::solve_batch`] — one job per circuit (bench corpora, GP
//!   training evaluations),
//! * [`DcEngine::sweep`] — sweep points in fixed-size chunks with
//!   warm-start handoff at chunk boundaries; output is **bit-identical for
//!   every thread count** (see below),
//! * the robust strategy races its ladder rungs concurrently when
//!   `threads > 1`, picking the lowest-index success.
//!
//! # Determinism
//!
//! Parallel results must not depend on scheduling. Every batch entry point
//! upholds: *the same engine configuration produces bitwise-identical
//! results for every `threads` value*, because
//!
//! * jobs never share mutable state — each owns its circuit clone,
//!   controller clone and LU workspace,
//! * results are collected in submission order, not completion order,
//! * the sweep chunk layout is a fixed configuration constant
//!   ([`DcEngine::DEFAULT_SWEEP_CHUNK`]), never derived from the worker
//!   count, and chunk interiors depend only on the serially-computed
//!   boundary solutions.
//!
//! The one *documented* deviation: the robust strategy with `threads > 1`
//! races cold-started rungs instead of escalating serially with warm-start
//! carry, so its iterate (not its correctness) can differ from the serial
//! ladder. Batches and sweeps never use the raced path internally.

use crate::assembly::{AssemblyMode, AssemblyWorkspace};
use crate::certify::{certify_into, HealthGrade};
use crate::error::{SolveError, SolvePhase};
use crate::newton::{newton_iterate, NewtonConfig, NewtonRaphson};
use crate::pta::{PtaConfig, PtaKind, PtaSolver};
use crate::recovery::{AttemptReport, LadderStage, RobustDcSolver, SolveBudget};
use crate::rl_stepping::{RlStepping, RlSteppingConfig};
use crate::stepping::{SerStepping, SimpleStepping, StepController, StepObservation};
use crate::sweep::{DcSweep, QuarantinedPoint, SweepPoint, SweepReport};
use crate::telemetry::{NullSink, Payload, Sink, Span, StatsFold, Tele};
use crate::{Solution, SolveStats};
use rlpta_linalg::LuWorkspace;
use rlpta_mna::Circuit;
use rlpta_threadpool::ThreadPool;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Step-control policy selector for the engine builder — the data half of a
/// [`StepController`], cheap to clone into every parallel job.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Stepping {
    /// Iteration-counting `IMAX`/`IMIN` stepping (the paper's "simple").
    Simple(SimpleStepping),
    /// Switched evolution/relaxation (the paper's "adaptive" baseline).
    Ser(SerStepping),
    /// The RL-S TD3 dual-agent controller, built fresh (untrained) per
    /// solve from this configuration. To evaluate a *pre-trained*
    /// controller use [`DcEngine::solve_batch_with`].
    Rl(RlSteppingConfig),
}

impl Default for Stepping {
    fn default() -> Self {
        Stepping::Simple(SimpleStepping::default())
    }
}

impl Stepping {
    /// Short name matching [`StepController::name`].
    pub fn name(&self) -> &'static str {
        match self {
            Stepping::Simple(_) => "simple",
            Stepping::Ser(_) => "adaptive-ser",
            Stepping::Rl(_) => "rl",
        }
    }

    fn controller(&self) -> AnyController {
        match self {
            Stepping::Simple(s) => AnyController::Simple(s.clone()),
            Stepping::Ser(s) => AnyController::Ser(s.clone()),
            Stepping::Rl(cfg) => AnyController::Rl(Box::new(RlStepping::new(cfg.clone()))),
        }
    }
}

/// Runtime-dispatched controller behind the [`Stepping`] selector.
#[derive(Debug, Clone)]
enum AnyController {
    Simple(SimpleStepping),
    Ser(SerStepping),
    Rl(Box<RlStepping>),
}

impl StepController for AnyController {
    fn initial_step(&mut self) -> f64 {
        match self {
            AnyController::Simple(c) => c.initial_step(),
            AnyController::Ser(c) => c.initial_step(),
            AnyController::Rl(c) => c.initial_step(),
        }
    }

    fn next_step(&mut self, obs: &StepObservation) -> f64 {
        match self {
            AnyController::Simple(c) => c.next_step(obs),
            AnyController::Ser(c) => c.next_step(obs),
            AnyController::Rl(c) => c.next_step(obs),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            AnyController::Simple(c) => c.name(),
            AnyController::Ser(c) => c.name(),
            AnyController::Rl(c) => c.name(),
        }
    }

    fn reset(&mut self) {
        match self {
            AnyController::Simple(c) => c.reset(),
            AnyController::Ser(c) => c.reset(),
            AnyController::Rl(c) => c.reset(),
        }
    }

    fn attach_telemetry(&mut self, sink: Arc<dyn Sink>, span: Span) {
        match self {
            AnyController::Simple(c) => c.attach_telemetry(sink, span),
            AnyController::Ser(c) => c.attach_telemetry(sink, span),
            AnyController::Rl(c) => c.attach_telemetry(sink, span),
        }
    }
}

/// Which solve algorithm the engine drives.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Strategy {
    /// Plain damped Newton–Raphson (no continuation).
    Newton,
    /// One pseudo-transient flavour with the configured [`Stepping`].
    Pta(PtaKind),
    /// The escalation ladder; raced concurrently when `threads > 1`.
    Robust(Vec<LadderStage>),
}

/// Builder for [`DcEngine`] — the single public entry point to the DC
/// solver stack. Unset options keep production defaults: the robust
/// escalation ladder, simple stepping, unlimited budget, one thread.
#[derive(Debug, Clone)]
pub struct DcEngineBuilder {
    strategy: Strategy,
    stepping: Stepping,
    config: PtaConfig,
    newton: NewtonConfig,
    budget: SolveBudget,
    threads: usize,
    sweep_chunk: usize,
    retries: u32,
    telemetry: Arc<dyn Sink>,
    #[cfg(feature = "faults")]
    fault_plan: Option<crate::recovery::FaultPlan>,
}

impl Default for DcEngineBuilder {
    fn default() -> Self {
        Self {
            strategy: Strategy::Robust(RobustDcSolver::default_ladder()),
            stepping: Stepping::default(),
            config: PtaConfig::default(),
            newton: NewtonConfig::default(),
            budget: SolveBudget::UNLIMITED,
            threads: 1,
            sweep_chunk: DcEngine::DEFAULT_SWEEP_CHUNK,
            retries: 0,
            telemetry: Arc::new(NullSink),
            #[cfg(feature = "faults")]
            fault_plan: None,
        }
    }
}

impl DcEngineBuilder {
    /// Solve with one pseudo-transient flavour (plus the configured
    /// [`Stepping`]) instead of the full ladder.
    #[must_use]
    pub fn kind(mut self, kind: PtaKind) -> Self {
        self.strategy = Strategy::Pta(kind);
        self
    }

    /// Solve with plain damped Newton–Raphson only.
    #[must_use]
    pub fn newton(mut self) -> Self {
        self.strategy = Strategy::Newton;
        self
    }

    /// Solve with the default escalation ladder (the builder default).
    #[must_use]
    pub fn robust(mut self) -> Self {
        self.strategy = Strategy::Robust(RobustDcSolver::default_ladder());
        self
    }

    /// Solve with an explicit escalation ladder.
    #[must_use]
    pub fn ladder(mut self, stages: Vec<LadderStage>) -> Self {
        self.strategy = Strategy::Robust(stages);
        self
    }

    /// Step-control policy for pseudo-transient strategies.
    #[must_use]
    pub fn stepping(mut self, stepping: Stepping) -> Self {
        self.stepping = stepping;
        self
    }

    /// Applies a unified [`EngineConfig`](crate::config::EngineConfig):
    /// sets the PTA limits *and* the solve budget in one call.
    #[must_use]
    pub fn config(mut self, config: crate::config::EngineConfig) -> Self {
        self.budget = config.budget();
        self.config = config.pta();
        self
    }

    /// Raw pseudo-transient limits and tolerances.
    #[must_use]
    pub fn pta_config(mut self, config: PtaConfig) -> Self {
        self.config = config;
        self
    }

    /// Newton options for the [`DcEngineBuilder::newton`] strategy and for
    /// the warm-started point solves inside [`DcEngine::sweep`]. (The PTA
    /// inner loop uses the tighter per-point Newton options carried by
    /// [`PtaConfig`].)
    #[must_use]
    pub fn newton_config(mut self, config: NewtonConfig) -> Self {
        self.newton = config;
        self
    }

    /// Assembly mode for **every** Newton loop the engine runs: the direct
    /// Newton strategy, the PTA inner loops, sweep points and each rung of
    /// a robust ladder (applied to the current strategy — set the ladder
    /// first). Results are bit-identical across modes; this is a
    /// performance knob kept public for A/B verification.
    #[must_use]
    pub fn assembly(mut self, mode: AssemblyMode) -> Self {
        self.newton.assembly = mode;
        self.config.newton.assembly = mode;
        if let Strategy::Robust(stages) = &mut self.strategy {
            for stage in stages {
                match stage {
                    LadderStage::DampedNewton(cfg) => cfg.assembly = mode,
                    LadderStage::GminStepping(gs) => gs.newton.assembly = mode,
                    LadderStage::SourceStepping(ss) => ss.newton.assembly = mode,
                    LadderStage::Cepta(pc) | LadderStage::Dpta(pc) => {
                        pc.newton.assembly = mode;
                    }
                    LadderStage::NewtonHomotopy(nh) => nh.newton.assembly = mode,
                }
            }
        }
        self
    }

    /// Per-job resource budget (deadline / NR cap / step cap). Every batch
    /// job and sweep point gets a fresh meter from this budget.
    #[must_use]
    pub fn budget(mut self, budget: SolveBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Worker-thread count for batch entry points; `0` sizes the pool to
    /// the host, `1` (the default) runs serially on the calling thread.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = if threads == 0 {
            rlpta_threadpool::available_threads()
        } else {
            threads
        };
        self
    }

    /// Telemetry sink receiving the unified event stream from every solve
    /// the engine runs — LU kernel operations, Newton iterations, PTA
    /// steps, ladder attempts, batch fan-out and sweep points, each tagged
    /// with its [`Span`]. The default [`NullSink`] drops everything at zero
    /// cost; see [`Collector`](crate::telemetry::Collector) and
    /// [`JsonlSink`](crate::telemetry::JsonlSink) for real consumers.
    #[must_use]
    pub fn telemetry(mut self, sink: Arc<dyn Sink>) -> Self {
        self.telemetry = sink;
        self
    }

    /// Sweep chunk size (points per parallel job). A fixed layout constant:
    /// changing it changes the warm-start chain, so it is deliberately
    /// **not** derived from the thread count — otherwise results would
    /// depend on the machine. Clamped to at least 1.
    #[must_use]
    pub fn sweep_chunk(mut self, points: usize) -> Self {
        self.sweep_chunk = points.max(1);
        self
    }

    /// Extra solve attempts per batch job and per sweep point after a
    /// retryable failure (anything except [`SolveError::InvalidConfig`],
    /// [`SolveError::BudgetExhausted`] and [`SolveError::WorkerPanic`]),
    /// with capped exponential backoff between attempts. The backoff never
    /// runs the job past the wall-clock half of the
    /// [`budget`](DcEngineBuilder::budget). Default `0`: one attempt, no
    /// behavioral change. Retries are deterministic — the solver is a pure
    /// function of its inputs, so a retry only helps against *transient*
    /// causes (injected faults, future external solvers).
    #[must_use]
    pub fn retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Installs a deterministic fault-injection plan inside **every** job
    /// (batch, sweep chunk, raced rung) before it runs, so chaos scenarios
    /// reach pooled workers — [`FaultPlan`](crate::recovery::FaultPlan)
    /// state is thread-local and would otherwise stay on the caller's
    /// thread. Cleared again when each job finishes.
    #[cfg(feature = "faults")]
    #[must_use]
    pub fn fault_plan(mut self, plan: crate::recovery::FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Finalizes the engine.
    pub fn build(self) -> DcEngine {
        DcEngine {
            strategy: self.strategy,
            stepping: self.stepping,
            config: self.config,
            newton: self.newton,
            budget: self.budget,
            threads: self.threads.max(1),
            sweep_chunk: self.sweep_chunk.max(1),
            retries: self.retries,
            telemetry: self.telemetry,
            #[cfg(feature = "faults")]
            fault_plan: self.fault_plan,
        }
    }
}

/// The batch DC-solve engine. Construct via [`DcEngine::builder`]; see the
/// [module documentation](self) for the determinism contract.
#[derive(Debug, Clone)]
pub struct DcEngine {
    strategy: Strategy,
    stepping: Stepping,
    config: PtaConfig,
    newton: NewtonConfig,
    budget: SolveBudget,
    threads: usize,
    sweep_chunk: usize,
    retries: u32,
    telemetry: Arc<dyn Sink>,
    #[cfg(feature = "faults")]
    fault_plan: Option<crate::recovery::FaultPlan>,
}

impl Default for DcEngine {
    /// The builder defaults: robust ladder, simple stepping, one thread.
    fn default() -> Self {
        Self::builder().build()
    }
}

impl DcEngine {
    /// Default sweep chunk size. Eight points per job keeps the warm-start
    /// chains long enough to pay while giving a typical transfer-curve
    /// sweep enough chunks to fill a small pool.
    pub const DEFAULT_SWEEP_CHUNK: usize = 8;

    /// Starts configuring an engine.
    pub fn builder() -> DcEngineBuilder {
        DcEngineBuilder::default()
    }

    /// Worker-thread count used by the batch entry points.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured solve strategy.
    pub fn strategy(&self) -> &Strategy {
        &self.strategy
    }

    /// The per-job resource budget.
    pub fn budget(&self) -> &SolveBudget {
        &self.budget
    }

    /// Solves one circuit with the configured strategy.
    ///
    /// # Errors
    ///
    /// The underlying solver's errors ([`SolveError::NonConvergent`],
    /// [`SolveError::Singular`], [`SolveError::AllStrategiesFailed`], …),
    /// plus [`SolveError::BudgetExhausted`] under a finite budget and
    /// [`SolveError::WorkerPanic`] if a raced ladder rung panics.
    pub fn solve(&self, circuit: &Circuit) -> Result<Solution, SolveError> {
        #[cfg(feature = "faults")]
        let _guard = self.install_faults();
        let out = self.solve_one(circuit);
        if let Err(e) = &out {
            self.note_solve_failure(Span::default(), e);
        }
        self.telemetry.finish();
        out
    }

    /// Solves every circuit as an independent pooled job; results come back
    /// in input order, one per circuit, failures per slot.
    ///
    /// A panicking job is isolated by the pool and surfaces as
    /// [`SolveError::WorkerPanic`] in its slot only.
    /// Batch jobs always run their strategy *serially* — the circuits
    /// themselves are the parallel unit, so racing ladder rungs inside a
    /// job would multiply work without helping wall-clock time.
    pub fn solve_batch(&self, circuits: &[Circuit]) -> Vec<Result<Solution, SolveError>> {
        let out = self.run_jobs(
            circuits
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    move || {
                        let tele = Tele::root(&*self.telemetry, Span::for_job(i));
                        self.solve_with_retries(|| self.solve_serial(c, &tele)).0
                    }
                })
                .collect::<Vec<_>>(),
        );
        let out = Self::label_panics(out, circuits);
        self.note_batch_failures(&out);
        self.telemetry.finish();
        out
    }

    /// Solves every circuit with a caller-supplied step controller — the
    /// path for evaluating one *pre-trained* RL controller across a corpus:
    /// each job gets its own clone, so training state is shared into every
    /// job but never mutated across jobs.
    ///
    /// Runs the PTA flavour of the configured strategy
    /// ([`PtaKind::default`] when the strategy is not PTA).
    pub fn solve_batch_with<C>(
        &self,
        circuits: &[Circuit],
        controller: &C,
    ) -> Vec<Result<Solution, SolveError>>
    where
        C: StepController + Clone + Sync,
    {
        let kind = self.pta_kind_or_default();
        let out = self.run_jobs(
            circuits
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    move || {
                        let span = Span::for_job(i);
                        let tele = Tele::root(&*self.telemetry, span);
                        self.solve_with_retries(|| {
                            let mut ctrl = controller.clone();
                            ctrl.attach_telemetry(self.telemetry.clone(), span);
                            let mut solver =
                                PtaSolver::with_config(kind, ctrl, self.config.clone());
                            let mut meter = self.budget.start();
                            meter.set_phase(SolvePhase::PseudoTransient);
                            let out = solver.solve_metered(c, &mut meter, &tele);
                            self.certified(c, out, &tele)
                        })
                        .0
                    }
                })
                .collect::<Vec<_>>(),
        );
        let out = Self::label_panics(out, circuits);
        self.note_batch_failures(&out);
        self.telemetry.finish();
        out
    }

    /// Runs a DC sweep in fixed-size chunks with warm-start handoff at the
    /// chunk boundaries.
    ///
    /// Phase 1 solves the first point of every chunk serially, each
    /// warm-started from the previous boundary solution. Phase 2 solves the
    /// chunk interiors as parallel jobs, warm-starting point-to-point
    /// within the chunk from its boundary. The computation per point is
    /// fully determined by the chunk layout ([`DcEngineBuilder::sweep_chunk`])
    /// — never by the thread count — so the report is bit-identical for
    /// every `threads` value.
    ///
    /// One LU factorization workspace is reused across all points of a
    /// chain (boundary chain and each chunk interior), so after the first
    /// point every Newton iteration replays the recorded symbolic pattern.
    ///
    /// # Errors
    ///
    /// [`SolveError::InvalidConfig`] if the swept source does not exist. A
    /// failing point does **not** abort the sweep: after the configured
    /// [`retries`](DcEngineBuilder::retries) it is quarantined
    /// ([`SweepReport::quarantined`]) and the warm-start chain resumes from
    /// the last surviving point (cold when a chunk's own boundary died), so
    /// a pathological bias point costs one entry in the quarantine list
    /// instead of the whole curve.
    pub fn sweep(&self, circuit: &Circuit, sweep: &DcSweep) -> Result<SweepReport, SolveError> {
        #[cfg(feature = "faults")]
        let _guard = self.install_faults();
        let values = sweep.values();
        let source = sweep.source();
        {
            let mut probe = circuit.clone();
            if !probe.set_source_dc(source, values[0]) {
                let err = SolveError::InvalidConfig {
                    detail: format!("no independent source named `{source}`"),
                };
                self.note_solve_failure(Span::default(), &err);
                self.telemetry.finish();
                return Err(err);
            }
        }
        let chunk = self.sweep_chunk;
        let n_chunks = values.len().div_ceil(chunk);

        // Phase 1: chunk boundaries, a serial warm-start chain. Boundary
        // events ride the job-less span (they belong to the shared chain,
        // not to any one chunk job). A failed boundary is quarantined and
        // the chain continues from the last good boundary.
        let mut boundaries: Vec<Result<Solution, QuarantinedPoint>> =
            Vec::with_capacity(n_chunks);
        {
            let tele = Tele::root(&*self.telemetry, Span::default());
            let mut work = circuit.clone();
            let mut lu_ws = LuWorkspace::new();
            let mut asm = AssemblyWorkspace::new();
            let mut last_good: Option<Vec<f64>> = None;
            for k in 0..n_chunks {
                let index = k * chunk;
                work.set_source_dc(source, values[index]);
                let (result, attempts) = self.solve_with_retries(|| {
                    self.solve_sweep_point(&work, last_good.as_deref(), &mut lu_ws, &mut asm, &tele)
                });
                match result {
                    Ok(sol) => {
                        tele.emit(Payload::SweepPoint {
                            index,
                            value: values[index],
                            stats: sol.stats,
                        });
                        last_good = Some(sol.x.clone());
                        boundaries.push(Ok(sol));
                    }
                    Err(e) => {
                        let error = e.to_string();
                        tele.emit(Payload::Quarantined {
                            index,
                            value: values[index],
                            error: error.clone(),
                        });
                        boundaries.push(Err(QuarantinedPoint {
                            index,
                            value: values[index],
                            error,
                            attempts,
                        }));
                    }
                }
            }
        }

        // Phase 2: chunk interiors, one pooled job per chunk. Failed points
        // are quarantined inside the job; the chain continues from the last
        // surviving point (cold start when the chunk's boundary itself was
        // quarantined).
        let interiors = self.run_jobs(
            (0..n_chunks)
                .map(|k| {
                    let boundary = &boundaries[k];
                    move || {
                        let tele = Tele::root(&*self.telemetry, Span::for_job(k));
                        let hi = ((k + 1) * chunk).min(values.len());
                        let mut work = circuit.clone();
                        let mut lu_ws = LuWorkspace::new();
                        let mut asm = AssemblyWorkspace::new();
                        let mut prev: Option<Vec<f64>> = match boundary {
                            Ok(sol) => Some(sol.x.clone()),
                            Err(_) => None,
                        };
                        let mut points = Vec::with_capacity(hi - (k * chunk + 1));
                        let mut quarantined: Vec<QuarantinedPoint> = Vec::new();
                        for (off, &v) in values[k * chunk + 1..hi].iter().enumerate() {
                            let index = k * chunk + 1 + off;
                            work.set_source_dc(source, v);
                            let (result, attempts) = self.solve_with_retries(|| {
                                self.solve_sweep_point(
                                    &work,
                                    prev.as_deref(),
                                    &mut lu_ws,
                                    &mut asm,
                                    &tele,
                                )
                            });
                            match result {
                                Ok(sol) => {
                                    tele.emit(Payload::SweepPoint {
                                        index,
                                        value: v,
                                        stats: sol.stats,
                                    });
                                    prev = Some(sol.x.clone());
                                    points.push(SweepPoint { value: v, solution: sol });
                                }
                                Err(e) => {
                                    let error = e.to_string();
                                    tele.emit(Payload::Quarantined {
                                        index,
                                        value: v,
                                        error: error.clone(),
                                    });
                                    quarantined.push(QuarantinedPoint {
                                        index,
                                        value: v,
                                        error,
                                        attempts,
                                    });
                                }
                            }
                        }
                        Ok((points, quarantined))
                    }
                })
                .collect::<Vec<_>>(),
        );

        // Merge in sweep order. A chunk job that *panicked* quarantines its
        // entire interior (the boundary, solved serially, survives on its
        // own merits).
        let mut points = Vec::with_capacity(values.len());
        let mut quarantined: Vec<QuarantinedPoint> = Vec::new();
        let mut stats = SolveStats::default();
        for (k, (boundary, interior)) in boundaries.into_iter().zip(interiors).enumerate() {
            match boundary {
                Ok(sol) => {
                    stats.absorb(&sol.stats);
                    points.push(SweepPoint {
                        value: values[k * chunk],
                        solution: sol,
                    });
                }
                Err(q) => quarantined.push(q),
            }
            match interior {
                Ok((pts, qs)) => {
                    for p in pts {
                        stats.absorb(&p.solution.stats);
                        points.push(p);
                    }
                    quarantined.extend(qs);
                }
                Err(e) => {
                    let error = e.to_string();
                    let hi = ((k + 1) * chunk).min(values.len());
                    for (index, &value) in values.iter().enumerate().take(hi).skip(k * chunk + 1) {
                        quarantined.push(QuarantinedPoint {
                            index,
                            value,
                            error: error.clone(),
                            attempts: 1,
                        });
                    }
                }
            }
        }
        quarantined.sort_by_key(|q| q.index);
        stats.converged =
            quarantined.is_empty() && points.iter().all(|p| p.solution.stats.converged);
        self.telemetry.finish();
        Ok(SweepReport {
            points,
            stats,
            quarantined,
        })
    }

    /// Solves one circuit with a caller-managed warm start and LU
    /// workspace — the reuse hook for long-lived callers
    /// ([`SimService`](crate::service::SimService)) that carry symbolic
    /// factorization plans and last-known operating points across requests.
    ///
    /// The solve path is exactly the sweep-point path: a damped Newton
    /// iteration seeded from `warm` (zeros when `None`) that replays the
    /// workspace's recorded symbolic pattern when it still matches the
    /// circuit (falling back to a fresh analysis otherwise — a stale
    /// workspace costs time, never correctness), independently certified,
    /// with a defeat escalating to the serial recovery ladder.
    ///
    /// # Errors
    ///
    /// Same surface as [`DcEngine::solve`]; a failed warm attempt only
    /// surfaces an error after the fallback ladder is also defeated.
    pub fn solve_warm(
        &self,
        circuit: &Circuit,
        warm: Option<&[f64]>,
        lu_ws: &mut LuWorkspace,
    ) -> Result<Solution, SolveError> {
        let mut asm = AssemblyWorkspace::new();
        let out = self.solve_warm_with_assembly(circuit, warm, lu_ws, &mut asm, Span::default());
        if let Err(e) = &out {
            self.note_solve_failure(Span::default(), e);
            self.telemetry.finish();
        }
        out
    }

    /// [`DcEngine::solve_warm`] with a caller-managed [`AssemblyWorkspace`]
    /// as well — the hook the service layer uses to carry resolved stamp
    /// plans across requests alongside the symbolic LU pattern.
    pub(crate) fn solve_warm_with_assembly(
        &self,
        circuit: &Circuit,
        warm: Option<&[f64]>,
        lu_ws: &mut LuWorkspace,
        asm: &mut AssemblyWorkspace,
        span: Span,
    ) -> Result<Solution, SolveError> {
        #[cfg(feature = "faults")]
        let _guard = self.install_faults();
        let tele = Tele::root(&*self.telemetry, span);
        let out = self
            .solve_with_retries(|| self.solve_sweep_point(circuit, warm, lu_ws, asm, &tele))
            .0;
        self.telemetry.finish();
        out
    }

    /// The engine's telemetry sink, shared so a service layer above the
    /// engine can emit its own events (cache hits, queue admissions) onto
    /// the same stream the solves write to.
    pub fn telemetry(&self) -> Arc<dyn Sink> {
        Arc::clone(&self.telemetry)
    }

    // --- internals -------------------------------------------------------

    /// Emits the one-per-failure [`Payload::SolveFailed`] boundary marker
    /// for a terminally failed request — the flight recorder's primary
    /// incident trigger. Called exactly once per failed job at the public
    /// entry points (and by the service layer for warm jobs), never from
    /// inner ladder rungs, so recorders see one trigger per failure.
    pub(crate) fn note_solve_failure(&self, span: Span, error: &SolveError) {
        Tele::root(&*self.telemetry, span).emit(Payload::SolveFailed {
            error: error.to_string(),
        });
    }

    /// [`DcEngine::note_solve_failure`] over every failed slot of a batch
    /// result (worker panics included — the pool surfaced them as
    /// [`SolveError::WorkerPanic`] per slot).
    fn note_batch_failures(&self, out: &[Result<Solution, SolveError>]) {
        for (i, r) in out.iter().enumerate() {
            if let Err(e) = r {
                self.note_solve_failure(Span::for_job(i), e);
            }
        }
    }

    /// A copy of this engine with a different per-job budget — lets the
    /// service layer honor per-ticket budgets without rebuilding the full
    /// configuration.
    pub(crate) fn with_budget(&self, budget: SolveBudget) -> DcEngine {
        let mut engine = self.clone();
        engine.budget = budget;
        engine
    }

    /// A copy of this engine with a different telemetry sink — lets the
    /// service layer splice a flight recorder into an already-built
    /// engine's stream (fanout with the original sink) without rebuilding
    /// the configuration.
    pub(crate) fn with_telemetry(&self, sink: Arc<dyn Sink>) -> DcEngine {
        let mut engine = self.clone();
        engine.telemetry = sink;
        engine
    }

    /// One serial PTA solve with a caller-supplied controller through the
    /// certification gate — the single-job body of
    /// [`DcEngine::solve_batch_with`], used by the service layer to run a
    /// shared frozen RL policy without spinning up a batch pool.
    pub(crate) fn solve_once_with<C>(
        &self,
        circuit: &Circuit,
        controller: C,
        tele: &Tele<'_>,
    ) -> Result<Solution, SolveError>
    where
        C: StepController,
    {
        let mut ctrl = controller;
        ctrl.attach_telemetry(self.telemetry.clone(), tele.span());
        let mut solver = PtaSolver::with_config(self.pta_kind_or_default(), ctrl, self.config.clone());
        let mut meter = self.budget.start();
        meter.set_phase(SolvePhase::PseudoTransient);
        let out = solver.solve_metered(circuit, &mut meter, tele);
        self.certified(circuit, out, tele)
    }

    fn pta_kind_or_default(&self) -> PtaKind {
        match &self.strategy {
            Strategy::Pta(kind) => *kind,
            _ => PtaKind::default(),
        }
    }

    fn solve_one(&self, circuit: &Circuit) -> Result<Solution, SolveError> {
        match &self.strategy {
            Strategy::Robust(stages) if self.threads > 1 && stages.len() > 1 => {
                self.solve_raced(stages, circuit)
            }
            _ => {
                let tele = Tele::root(&*self.telemetry, Span::default());
                self.solve_serial(circuit, &tele)
            }
        }
    }

    /// One circuit through the configured strategy with no intra-solve
    /// parallelism — the per-job body of every batch entry point. Every
    /// success leaves with [`Solution::health`] populated: the ladder
    /// certifies (and demotes) internally, the direct strategies go through
    /// the [`DcEngine::certified`] gate here.
    fn solve_serial(&self, circuit: &Circuit, tele: &Tele<'_>) -> Result<Solution, SolveError> {
        match &self.strategy {
            Strategy::Newton => {
                let mut meter = self.budget.start();
                meter.set_phase(SolvePhase::Newton);
                let out = NewtonRaphson::from_config(self.newton.clone()).solve_metered(
                    circuit,
                    &vec![0.0; circuit.dim()],
                    &mut meter,
                    tele,
                );
                self.certified(circuit, out, tele)
            }
            Strategy::Pta(kind) => {
                let mut ctrl = self.stepping.controller();
                ctrl.attach_telemetry(self.telemetry.clone(), tele.span());
                let mut solver = PtaSolver::with_config(*kind, ctrl, self.config.clone());
                let mut meter = self.budget.start();
                meter.set_phase(SolvePhase::PseudoTransient);
                let out = solver.solve_metered(circuit, &mut meter, tele);
                self.certified(circuit, out, tele)
            }
            Strategy::Robust(stages) => RobustDcSolver::from_stages(stages.clone())
                .with_budget(self.budget)
                .solve_with(circuit, tele),
        }
    }

    /// Certification gate for the non-ladder strategies: grades the
    /// operating point (rescuing a rejected one, see
    /// [`certify_into`](crate::certify)), attaches the report, and turns a
    /// surviving rejection into [`SolveError::CertificationFailed`] — the
    /// direct strategies have no further rung to demote to.
    fn certified(
        &self,
        circuit: &Circuit,
        result: Result<Solution, SolveError>,
        tele: &Tele<'_>,
    ) -> Result<Solution, SolveError> {
        let mut sol = result?;
        if sol.health.is_none() && certify_into(circuit, &mut sol, tele) == HealthGrade::Rejected {
            let residual_norm = sol
                .health
                .as_ref()
                .map_or(f64::INFINITY, |h| h.residual_norm);
            return Err(SolveError::CertificationFailed { residual_norm });
        }
        Ok(sol)
    }

    /// Retry loop used by the batch and sweep entry points: re-runs a solve
    /// up to `self.retries` extra times on retryable errors, sleeping a
    /// capped exponential backoff between attempts (bounded by the job's
    /// wall-clock budget). Returns the final outcome and attempts consumed.
    fn solve_with_retries<F>(&self, mut solve: F) -> (Result<Solution, SolveError>, u32)
    where
        F: FnMut() -> Result<Solution, SolveError>,
    {
        const BACKOFF_CAP_MS: u64 = 50;
        let started = Instant::now();
        let mut attempts = 1u32;
        let mut out = solve();
        while attempts <= self.retries {
            match &out {
                Ok(_)
                | Err(SolveError::InvalidConfig { .. }
                | SolveError::BudgetExhausted { .. }
                | SolveError::WorkerPanic { .. }) => break,
                Err(_) => {}
            }
            let backoff =
                Duration::from_millis((1u64 << (attempts - 1).min(6)).min(BACKOFF_CAP_MS));
            if let Some(deadline) = self.budget.wall_clock {
                if started.elapsed() + backoff >= deadline {
                    break;
                }
            }
            std::thread::sleep(backoff);
            out = solve();
            attempts += 1;
        }
        (out, attempts)
    }

    /// Enriches per-slot [`SolveError::WorkerPanic`] results with the job
    /// index and circuit title, so a panicked batch job is attributable
    /// without cross-referencing the input order.
    fn label_panics(
        results: Vec<Result<Solution, SolveError>>,
        circuits: &[Circuit],
    ) -> Vec<Result<Solution, SolveError>> {
        results
            .into_iter()
            .zip(circuits)
            .enumerate()
            .map(|(i, (r, c))| match r {
                Err(SolveError::WorkerPanic { detail }) => Err(SolveError::WorkerPanic {
                    detail: format!("job {i} (circuit `{}`): {detail}", c.title()),
                }),
                other => other,
            })
            .collect()
    }

    /// Races every ladder rung concurrently from a cold start, each under
    /// its own meter from the shared budget. Winner = lowest-index success
    /// (deterministic for any thread count); the aggregate statistics
    /// charge the winner plus every lower rung, matching what a serial
    /// early-exit ladder would have reported.
    fn solve_raced(
        &self,
        stages: &[LadderStage],
        circuit: &Circuit,
    ) -> Result<Solution, SolveError> {
        let results = self.run_jobs(
            stages
                .iter()
                .enumerate()
                .map(|(i, stage)| {
                    move || {
                        // Each raced rung is its own pooled job; its events
                        // carry the rung index so losers stay attributable.
                        let tele = Tele::root(&*self.telemetry, Span::for_job(i));
                        RobustDcSolver::from_stages(vec![stage.clone()])
                            .with_budget(self.budget)
                            .solve_with(circuit, &tele)
                    }
                })
                .collect::<Vec<_>>(),
        );

        let mut attempts: Vec<AttemptReport> = Vec::new();
        let mut budget_hit: Option<SolveError> = None;
        for result in results {
            match result {
                Ok(mut sol) => {
                    let mut total = SolveStats::default();
                    for a in &attempts {
                        total.absorb(&a.stats);
                    }
                    total.absorb(&sol.stats);
                    sol.stats = total;
                    return Ok(sol);
                }
                Err(SolveError::AllStrategiesFailed { attempts: mut a }) => {
                    // Each rung ran as a single-stage ladder, so its trail
                    // carries exactly one report.
                    attempts.append(&mut a);
                }
                Err(e @ SolveError::BudgetExhausted { .. }) => {
                    if budget_hit.is_none() {
                        budget_hit = Some(e);
                    }
                }
                Err(e) => {
                    return Err(e);
                }
            }
        }
        match budget_hit {
            Some(e) => Err(e),
            None => Err(SolveError::AllStrategiesFailed { attempts }),
        }
    }

    /// One sweep point: warm-started damped Newton with the shared LU
    /// workspace; a region crossing that defeats Newton falls back to the
    /// serial escalation ladder (the engine's own stages when the strategy
    /// is robust, the default ladder otherwise).
    fn solve_sweep_point(
        &self,
        work: &Circuit,
        warm: Option<&[f64]>,
        lu_ws: &mut LuWorkspace,
        asm: &mut AssemblyWorkspace,
        tele: &Tele<'_>,
    ) -> Result<Solution, SolveError> {
        let zeros;
        let x0: &[f64] = match warm {
            Some(x) => x,
            None => {
                zeros = vec![0.0; work.dim()];
                &zeros
            }
        };
        let mut meter = self.budget.start();
        meter.set_phase(SolvePhase::Newton);
        let mut state = work.seeded_state(x0);
        let fold = StatsFold::default();
        let point_tele = tele.child(&fold);
        let attempt = newton_iterate(
            work,
            &self.newton,
            x0,
            &mut state,
            &mut |_, _| {},
            &mut meter,
            lu_ws,
            asm,
            &point_tele,
        );
        match attempt {
            Ok(out) if out.converged => {
                point_tele.emit(Payload::SolveDone { converged: true });
                let mut sol = Solution {
                    x: out.x,
                    stats: fold.snapshot(),
                    health: None,
                };
                // A warm iterate that fails independent certification (even
                // after the rescue) is treated like any other Newton defeat:
                // fall through to the escalation ladder below.
                if certify_into(work, &mut sol, &point_tele) != HealthGrade::Rejected {
                    return Ok(sol);
                }
            }
            Err(e @ SolveError::BudgetExhausted { .. }) => return Err(e),
            _ => {}
        }
        // The failed warm-start attempt's work is not charged to the
        // fallback solution (matching the historical stats), but its events
        // are already on the stream above.
        let stages = match &self.strategy {
            Strategy::Robust(stages) => stages.clone(),
            _ => RobustDcSolver::default_ladder(),
        };
        RobustDcSolver::from_stages(stages)
            .with_budget(self.budget)
            .solve_with(work, tele)
    }

    /// Runs fallible jobs on the pool, mapping pool-level panics to
    /// [`SolveError::WorkerPanic`] per slot. Installs the configured fault
    /// plan inside each job (and clears it after), so injection reaches
    /// pooled workers whose thread-locals start disarmed.
    fn run_jobs<T, F>(&self, jobs: Vec<F>) -> Vec<Result<T, SolveError>>
    where
        T: Send,
        F: FnOnce() -> Result<T, SolveError> + Send,
    {
        #[cfg(feature = "faults")]
        let plan = self.fault_plan;
        let of = jobs.len();
        let wrapped: Vec<_> = jobs
            .into_iter()
            .enumerate()
            .map(|(i, job)| {
                move || {
                    #[cfg(feature = "faults")]
                    if let Some(p) = plan {
                        p.install();
                    }
                    // Announce the pooled job on the stream. The span is
                    // built on the worker thread so it carries the real
                    // worker index.
                    Tele::root(&*self.telemetry, Span::for_job(i))
                        .emit(Payload::BatchJob { job: i, of });
                    let out = job();
                    #[cfg(feature = "faults")]
                    if plan.is_some() {
                        crate::recovery::FaultPlan::clear();
                    }
                    out
                }
            })
            .collect();
        ThreadPool::new(self.threads)
            .run(wrapped)
            .into_iter()
            .map(|r| match r {
                Ok(inner) => inner,
                Err(panic) => Err(SolveError::WorkerPanic {
                    detail: panic.to_string(),
                }),
            })
            .collect()
    }

    /// Installs the engine's fault plan on the *calling* thread for serial
    /// entry points; the returned guard restores a disarmed state on drop.
    #[cfg(feature = "faults")]
    fn install_faults(&self) -> Option<FaultGuard> {
        self.fault_plan.map(|plan| {
            plan.install();
            FaultGuard
        })
    }
}

/// Clears the thread-local injectors when a serial faulted solve finishes.
#[cfg(feature = "faults")]
struct FaultGuard;

#[cfg(feature = "faults")]
impl Drop for FaultGuard {
    fn drop(&mut self) {
        crate::recovery::FaultPlan::clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diode_clamp() -> Circuit {
        rlpta_netlist::parse("t\nV1 in 0 5\nR1 in out 1k\nD1 out 0 DX\n.model DX D(IS=1e-14)\n")
            .unwrap()
    }

    fn corpus() -> Vec<Circuit> {
        vec![
            rlpta_netlist::parse("a\nV1 a 0 10\nR1 a b 2k\nR2 b 0 3k\n").unwrap(),
            diode_clamp(),
            rlpta_netlist::parse(
                "b\nV1 vcc 0 12\nR1 vcc b 100k\nR2 b 0 22k\nRC vcc c 2.2k\nRE e 0 1k\nQ1 c b e QN\n.model QN NPN(IS=1e-15 BF=120)",
            )
            .unwrap(),
        ]
    }

    #[test]
    fn builder_defaults_solve_a_circuit() {
        let engine = DcEngine::builder().build();
        let c = diode_clamp();
        let sol = engine.solve(&c).unwrap();
        assert!(sol.stats.converged);
        let v = sol.voltage(&c, "out").unwrap();
        assert!(v > 0.55 && v < 0.85, "diode drop {v}");
    }

    #[test]
    fn newton_strategy_matches_plain_newton() {
        let c = diode_clamp();
        let via_engine = DcEngine::builder().newton().build().solve(&c).unwrap();
        let direct = crate::NewtonRaphson::default().solve(&c).unwrap();
        assert_eq!(via_engine.x, direct.x);
    }

    #[test]
    fn pta_strategy_solves_with_each_stepping() {
        let c = diode_clamp();
        for stepping in [
            Stepping::Simple(SimpleStepping::default()),
            Stepping::Ser(SerStepping::default()),
        ] {
            let engine = DcEngine::builder()
                .kind(PtaKind::cepta())
                .stepping(stepping.clone())
                .build();
            let sol = engine.solve(&c).unwrap();
            assert!(sol.stats.converged, "stepping {}", stepping.name());
        }
    }

    #[test]
    fn batch_results_identical_serial_vs_parallel() {
        let circuits = corpus();
        let serial = DcEngine::builder()
            .kind(PtaKind::cepta())
            .threads(1)
            .build()
            .solve_batch(&circuits);
        let parallel = DcEngine::builder()
            .kind(PtaKind::cepta())
            .threads(4)
            .build()
            .solve_batch(&circuits);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s, p, "batch solve must not depend on thread count");
        }
    }

    #[test]
    fn batch_preserves_input_order_and_isolates_failures() {
        let mut circuits = corpus();
        // A circuit Newton cannot solve in one iteration and PTA cannot
        // rescue within a 1-step budget: its slot must fail, others succeed.
        circuits.insert(1, diode_clamp());
        let engine = DcEngine::builder()
            .kind(PtaKind::Pure)
            .budget(SolveBudget::UNLIMITED.steps(1))
            .threads(3)
            .build();
        let results = engine.solve_batch(&circuits);
        assert_eq!(results.len(), circuits.len());
        // The linear divider solves in the first PTA step... actually under
        // a 1-step budget even easy circuits may trip; what matters here is
        // slot alignment: every result corresponds to its input circuit.
        for r in &results {
            match r {
                Ok(sol) => assert!(sol.stats.converged),
                Err(e) => assert!(
                    matches!(
                        e,
                        SolveError::BudgetExhausted { .. } | SolveError::NonConvergent { .. }
                    ),
                    "unexpected {e:?}"
                ),
            }
        }
    }

    #[test]
    fn raced_robust_matches_serial_winner() {
        let c = diode_clamp();
        let stages = RobustDcSolver::default_ladder();
        let raced = DcEngine::builder()
            .ladder(stages.clone())
            .threads(4)
            .build()
            .solve(&c)
            .unwrap();
        let serial = DcEngine::builder()
            .ladder(stages)
            .threads(1)
            .build()
            .solve(&c)
            .unwrap();
        // Newton (rung 0) wins in both; cold vs warm start is identical for
        // the first rung, so even the iterates agree.
        assert_eq!(raced.x, serial.x);
        assert_eq!(raced.stats, serial.stats);
    }

    #[test]
    fn raced_robust_all_failing_collects_ordered_attempts() {
        let c = diode_clamp();
        let doomed = NewtonConfig {
            max_iterations: 1,
            ..NewtonConfig::default()
        };
        let engine = DcEngine::builder()
            .ladder(vec![
                LadderStage::DampedNewton(doomed.clone()),
                LadderStage::DampedNewton(doomed),
            ])
            .threads(2)
            .build();
        match engine.solve(&c) {
            Err(SolveError::AllStrategiesFailed { attempts }) => {
                assert_eq!(attempts.len(), 2);
                assert!(attempts.iter().all(|a| a.strategy == "newton"));
            }
            other => panic!("expected AllStrategiesFailed, got {other:?}"),
        }
    }

    #[test]
    fn sweep_is_bit_identical_across_thread_counts() {
        let c = rlpta_netlist::parse(
            "t\nV1 in 0 0\nR1 in a 100\nD1 a 0 DX\n.model DX D(IS=1e-14)\n",
        )
        .unwrap();
        let sweep = DcSweep::linear("V1", 0.0, 2.0, 0.1).unwrap();
        let serial = DcEngine::builder()
            .threads(1)
            .build()
            .sweep(&c, &sweep)
            .unwrap();
        for threads in [2, 4, 7] {
            let parallel = DcEngine::builder()
                .threads(threads)
                .build()
                .sweep(&c, &sweep)
                .unwrap();
            assert_eq!(
                serial, parallel,
                "sweep output depends on thread count {threads}"
            );
        }
    }

    #[test]
    fn sweep_reuses_one_workspace_per_chain() {
        // 21 points, chunk 8 → 3 boundary solves + 3 interior chains. The
        // lu_factorizations aggregate must show far fewer *symbolic*
        // analyses than factorizations — indirectly: the sweep solves all
        // points and each point's Newton work stays tiny with warm starts.
        let c = rlpta_netlist::parse(
            "t\nV1 in 0 0\nR1 in a 100\nD1 a 0 DX\n.model DX D(IS=1e-14)\n",
        )
        .unwrap();
        let sweep = DcSweep::linear("V1", 0.0, 2.0, 0.1).unwrap();
        let report = DcEngine::builder().build().sweep(&c, &sweep).unwrap();
        assert_eq!(report.points.len(), 21);
        assert!(report.stats.converged);
        assert!(report.stats.nr_iterations > 0);
    }

    #[test]
    fn sweep_unknown_source_is_invalid_config() {
        let c = diode_clamp();
        let sweep = DcSweep::linear("V99", 0.0, 1.0, 0.5).unwrap();
        assert!(matches!(
            DcEngine::builder().build().sweep(&c, &sweep),
            Err(SolveError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn stepping_names_are_stable() {
        assert_eq!(Stepping::default().name(), "simple");
        assert_eq!(Stepping::Ser(SerStepping::default()).name(), "adaptive-ser");
        assert_eq!(Stepping::Rl(RlSteppingConfig::new(1)).name(), "rl");
    }

    #[test]
    fn threads_zero_means_auto() {
        let engine = DcEngine::builder().threads(0).build();
        assert!(engine.threads() >= 1);
    }
}
