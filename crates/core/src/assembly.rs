//! Assembly-mode selection and the per-context workspace for two-phase
//! (resolve/write) stamping.
//!
//! The solvers assemble `J(x)` either through the reference triplet path
//! (push, sort, dedup every iteration) or through a precompiled
//! [`StampPlan`] (resolve targets once, then scatter values through the
//! slot table into a persistent CSR buffer). Both paths run the *same*
//! device code and are bit-identical by construction; the plan path just
//! skips the per-iteration sort and allocation.

use rlpta_linalg::CsrMatrix;
use rlpta_mna::{BumpPlan, StampPlan};
use std::sync::Arc;

/// How Newton systems are assembled each iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum AssemblyMode {
    /// Precompiled stamp plan: one structural resolve per circuit
    /// structure, then per-iteration in-place slot-table scatter — no
    /// triplet allocation or sorting in the hot loop. The default.
    #[default]
    Plan,
    /// Reference path: per-iteration triplet pushes plus sort/dedup on
    /// conversion. Kept for verification — plan-path results are required
    /// to be bit-identical to this.
    Triplet,
}

/// Per-solve-context assembly state, threaded through `newton_iterate`
/// alongside the LU workspace: the resolved plan (possibly shared from the
/// service plan cache), the persistent working CSR buffer it scatters
/// into, and the lazily-built Gmin-bump companion.
///
/// Like `LuWorkspace`, one instance serves a whole chain of solves on one
/// structure (PTA steps, continuation stages, sweep points): the plan
/// resolves once and every subsequent iteration is a pure write pass.
#[derive(Debug, Default)]
pub(crate) struct AssemblyWorkspace {
    plan: Option<Arc<StampPlan>>,
    /// Working values buffer over the plan's frozen pattern.
    matrix: Option<CsrMatrix>,
    /// Gmin-bump escalation state (pattern ∪ node diagonals), built on
    /// first singular factorization and reused after.
    bump: Option<(BumpPlan, CsrMatrix)>,
}

impl AssemblyWorkspace {
    /// An empty workspace: the plan resolves inside the first Newton run.
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// A workspace seeded with a cache-shared plan (the service warm
    /// path): the first Newton run skips stamp resolution entirely.
    pub(crate) fn with_plan(plan: Arc<StampPlan>) -> Self {
        Self {
            plan: Some(plan),
            matrix: None,
            bump: None,
        }
    }

    /// The resolved plan, if any (for cache write-back by the service).
    pub(crate) fn plan(&self) -> Option<&Arc<StampPlan>> {
        self.plan.as_ref()
    }

    /// Installs a freshly resolved plan, dropping buffers bound to any
    /// previous one.
    pub(crate) fn set_plan(&mut self, plan: Arc<StampPlan>) {
        self.plan = Some(plan);
        self.matrix = None;
        self.bump = None;
    }

    /// Drops a plan that no longer fits the circuit (dimension change).
    pub(crate) fn reset(&mut self) {
        self.plan = None;
        self.matrix = None;
        self.bump = None;
    }

    /// The plan plus its working matrix, allocating the buffer on first
    /// use.
    ///
    /// # Panics
    ///
    /// Panics if no plan is installed.
    pub(crate) fn plan_and_matrix(&mut self) -> (Arc<StampPlan>, &mut CsrMatrix) {
        let plan = self
            .plan
            .clone()
            .expect("assembly workspace used before plan resolution");
        let matrix = self.matrix.get_or_insert_with(|| plan.new_matrix());
        (plan, matrix)
    }

    /// The Gmin-bump companion (built lazily) and the *base* working
    /// matrix, split-borrowed so the caller can scatter base → bumped.
    ///
    /// # Panics
    ///
    /// Panics if called before [`AssemblyWorkspace::plan_and_matrix`].
    pub(crate) fn bump_and_base(
        &mut self,
        num_nodes: usize,
    ) -> (&BumpPlan, &mut CsrMatrix, &CsrMatrix) {
        let plan = self
            .plan
            .as_ref()
            .expect("bump requested before plan resolution");
        if self.bump.is_none() {
            let bp = plan.bump_plan(num_nodes);
            let bm = bp.new_matrix();
            self.bump = Some((bp, bm));
        }
        let (bp, bm) = self.bump.as_mut().expect("bump state just built");
        let base = self
            .matrix
            .as_ref()
            .expect("bump requested before base assembly");
        (bp, bm, base)
    }
}
