//! Solver output: the operating point and run statistics.

use rlpta_mna::Circuit;
use std::fmt;

/// Counters accumulated over a solve — the quantities the paper's tables
/// report (`#Ite` = NR iterations, `#Ste` = pseudo-transient steps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolveStats {
    /// Total Newton–Raphson iterations across all time points (`#Ite`).
    pub nr_iterations: usize,
    /// Accepted pseudo-transient time points (`#Ste`).
    pub pta_steps: usize,
    /// Rejected (rolled-back) time points.
    pub rejected_steps: usize,
    /// Full (symbolic + numeric) sparse LU factorizations performed.
    pub lu_factorizations: usize,
    /// Cheap numeric-only LU pattern replays performed. Together with
    /// [`SolveStats::lu_factorizations`] this counts every linear solve
    /// setup; the split shows how much the symbolic cache is saving.
    pub lu_refactorizations: usize,
    /// Whether the run reached the DC operating point.
    pub converged: bool,
}

impl SolveStats {
    /// Merges another run's counters into this one (used by multi-phase
    /// continuation).
    pub fn absorb(&mut self, other: &SolveStats) {
        self.nr_iterations += other.nr_iterations;
        self.pta_steps += other.pta_steps;
        self.rejected_steps += other.rejected_steps;
        self.lu_factorizations += other.lu_factorizations;
        self.lu_refactorizations += other.lu_refactorizations;
        self.converged = other.converged;
    }

    /// Total linear-solve setups: full factorizations plus pattern replays.
    pub fn lu_total(&self) -> usize {
        self.lu_factorizations + self.lu_refactorizations
    }
}

impl fmt::Display for SolveStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} NR iterations, {} steps ({} rejected), {} LU ({} full / {} replay), converged: {}",
            self.nr_iterations,
            self.pta_steps,
            self.rejected_steps,
            self.lu_total(),
            self.lu_factorizations,
            self.lu_refactorizations,
            self.converged
        )
    }
}

/// A DC operating point: the MNA unknown vector plus run statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// MNA unknowns `[v_0 … v_{N−1}, i_0 … i_{M−1}]`.
    pub x: Vec<f64>,
    /// Run statistics.
    pub stats: SolveStats,
    /// Independent certification of the operating point. Populated by the
    /// [`DcEngine`](crate::DcEngine) on every returned solution; `None` only
    /// when a raw strategy ([`crate::NewtonRaphson`], [`crate::PtaSolver`])
    /// is driven directly without the engine or ladder on top.
    pub health: Option<crate::HealthReport>,
}

impl Solution {
    /// Voltage of a named node, or `None` if the node does not exist.
    /// Ground aliases are not resolvable here (they are not unknowns) —
    /// ground is 0 V by definition.
    pub fn voltage(&self, circuit: &Circuit, node: &str) -> Option<f64> {
        circuit.node_index(node).map(|i| self.x[i])
    }

    /// Branch current of a named branch-owning device (voltage source,
    /// inductor, VCVS or CCVS), or `None` for unknown names and devices
    /// without a branch unknown.
    pub fn branch_current(&self, circuit: &Circuit, device: &str) -> Option<f64> {
        use rlpta_devices::Device;
        circuit.devices().iter().find_map(|d| {
            let branch = match d {
                Device::Vsource(v) if v.name().eq_ignore_ascii_case(device) => Some(v.branch()),
                Device::Inductor(l) if l.name().eq_ignore_ascii_case(device) => Some(l.branch()),
                Device::Vcvs(e) if e.name().eq_ignore_ascii_case(device) => Some(e.branch()),
                Device::Ccvs(h) if h.name().eq_ignore_ascii_case(device) => Some(h.branch()),
                _ => None,
            };
            branch.map(|b| self.x[b])
        })
    }

    /// Infinity norm of the circuit's residual at this solution — a direct
    /// quality check.
    pub fn residual_norm(&self, circuit: &Circuit) -> f64 {
        rlpta_linalg::norms::inf_norm(&circuit.residual(&self.x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlpta_devices::{Node, Resistor, Vsource};
    use rlpta_mna::CircuitBuilder;

    fn divider() -> Circuit {
        let mut b = CircuitBuilder::new("d");
        let a = b.node("in");
        let o = b.node("out");
        b.add(Vsource::new("V1", a, Node::GROUND, 4.0));
        b.add(Resistor::new("R1", a, o, 1e3));
        b.add(Resistor::new("R2", o, Node::GROUND, 1e3));
        b.build().unwrap()
    }

    #[test]
    fn voltage_lookup() {
        let c = divider();
        let s = Solution {
            x: vec![4.0, 2.0, -2e-3],
            stats: SolveStats::default(),
            health: None,
        };
        assert_eq!(s.voltage(&c, "out"), Some(2.0));
        assert_eq!(s.voltage(&c, "nope"), None);
    }

    #[test]
    fn branch_current_lookup() {
        let c = divider();
        let s = Solution {
            x: vec![4.0, 2.0, -2e-3],
            stats: SolveStats::default(),
            health: None,
        };
        assert_eq!(s.branch_current(&c, "V1"), Some(-2e-3));
        assert_eq!(s.branch_current(&c, "v1"), Some(-2e-3), "case-insensitive");
        assert_eq!(s.branch_current(&c, "R1"), None, "resistors have no branch");
        assert_eq!(s.branch_current(&c, "nope"), None);
    }

    #[test]
    fn residual_norm_zero_at_solution() {
        let c = divider();
        let s = Solution {
            x: vec![4.0, 2.0, -2e-3],
            stats: SolveStats::default(),
            health: None,
        };
        assert!(s.residual_norm(&c) < 1e-12);
        let bad = Solution {
            x: vec![4.0, 3.0, -2e-3],
            stats: SolveStats::default(),
            health: None,
        };
        assert!(bad.residual_norm(&c) > 1e-4);
    }

    #[test]
    fn stats_absorb_accumulates() {
        let mut a = SolveStats {
            nr_iterations: 5,
            pta_steps: 2,
            ..Default::default()
        };
        let b = SolveStats {
            nr_iterations: 3,
            pta_steps: 1,
            rejected_steps: 1,
            lu_factorizations: 4,
            lu_refactorizations: 2,
            converged: true,
        };
        a.absorb(&b);
        assert_eq!(a.nr_iterations, 8);
        assert_eq!(a.pta_steps, 3);
        assert_eq!(a.rejected_steps, 1);
        assert_eq!(a.lu_factorizations, 4);
        assert_eq!(a.lu_refactorizations, 2);
        assert_eq!(b.lu_total(), 6);
        assert!(a.converged);
    }

    #[test]
    fn stats_display() {
        let s = SolveStats {
            nr_iterations: 7,
            ..Default::default()
        };
        assert!(s.to_string().contains("7 NR"));
    }
}
