//! IPP glue: binds the Gaussian-process active learner of `rlpta-gp` to
//! real PTA runs (the paper's §3 pipeline).

use crate::telemetry::{Event, Payload, Sink, Span};
use crate::{PtaConfig, PtaKind, PtaParams, PtaSolver, SimpleStepping, SolveBudget};
use rlpta_gp::{ActiveLearner, GpError, IterationOracle};
use rlpta_mna::Circuit;
use std::sync::Arc;

/// Cost assigned to a non-convergent run (log scale — roughly e¹² ≈ 160 000
/// "virtual" iterations, far above any convergent run).
const DIVERGED_COST: f64 = 12.0;

/// An [`IterationOracle`] that runs a real PTA solver on a corpus of
/// training circuits and reports the log-scaled NR iteration count.
///
/// The active learner minimizes this cost; log scaling keeps the GP from
/// being dominated by the occasional thousand-iteration outlier.
pub struct IppOracle<'a> {
    circuits: &'a [Circuit],
    kind: PtaKind,
    config: PtaConfig,
    budget: SolveBudget,
    threads: usize,
    evaluations: usize,
    rounds: usize,
    telemetry: Option<Arc<dyn Sink>>,
}

impl<'a> IppOracle<'a> {
    /// Creates an oracle over `circuits` for the given PTA flavour.
    pub fn new(circuits: &'a [Circuit], kind: PtaKind) -> Self {
        let config = PtaConfig {
            // Keep the training loop cheap: cap the per-run budget.
            max_steps: 4000,
            ..PtaConfig::default()
        };
        Self {
            circuits,
            kind,
            config,
            budget: SolveBudget::UNLIMITED,
            threads: 1,
            evaluations: 0,
            rounds: 0,
            telemetry: None,
        }
    }

    /// Caps every training solve with `budget` (wall-clock / NR iteration /
    /// step ceilings); an exhausted run counts as a divergence.
    #[must_use]
    pub fn with_budget(mut self, budget: SolveBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Evaluates the active learner's per-round proposal batches on
    /// `threads` pooled workers (`0` sizes the pool to the host). The
    /// training *results* are identical at any thread count: each solve is
    /// independent and costs come back in job order.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = if threads == 0 {
            rlpta_threadpool::available_threads()
        } else {
            threads
        };
        self
    }

    /// Streams one [`Payload::AcquisitionRound`] event per proposal batch
    /// the active learner evaluates — GP training progress on the same
    /// event stream as the solver work it triggers.
    #[must_use]
    pub fn with_telemetry(mut self, sink: Arc<dyn Sink>) -> Self {
        self.telemetry = Some(sink);
        self
    }

    /// Total solver invocations so far.
    pub fn evaluations(&self) -> usize {
        self.evaluations
    }

    /// Runs one solve and returns the raw statistics (used by the
    /// experiment harness for reporting).
    pub fn run_raw(&mut self, circuit: &Circuit, params: PtaParams) -> Option<crate::SolveStats> {
        self.evaluations += 1;
        run_stats(self.kind, &self.config, &self.budget, circuit, params)
    }
}

/// One budgeted PTA solve, shared by the serial and pooled evaluation paths.
fn run_stats(
    kind: PtaKind,
    config: &PtaConfig,
    budget: &SolveBudget,
    circuit: &Circuit,
    params: PtaParams,
) -> Option<crate::SolveStats> {
    let mut solver = PtaSolver::with_config(kind, SimpleStepping::default(), config.clone())
        .with_params(params);
    match solver.solve_budgeted(circuit, budget) {
        Ok(sol) => Some(sol.stats),
        Err(
            crate::SolveError::NonConvergent { stats }
            | crate::SolveError::BudgetExhausted { stats, .. },
        ) => {
            let mut s = stats;
            s.converged = false;
            Some(s)
        }
        Err(_) => None,
    }
}

/// Log-scaled cost of one run's statistics.
fn stats_cost(stats: Option<crate::SolveStats>) -> f64 {
    match stats {
        Some(stats) if stats.converged => (stats.nr_iterations as f64).max(1.0).ln(),
        _ => DIVERGED_COST,
    }
}

impl IterationOracle for IppOracle<'_> {
    fn evaluate(&mut self, circuit: usize, w: &[f64]) -> f64 {
        let params = PtaParams::from_w(w);
        stats_cost(self.run_raw(&self.circuits[circuit], params))
    }

    /// Pooled override: a round's proposals are independent solves, so run
    /// them concurrently. Oracle evaluation draws no randomness, and costs
    /// return in job order, so training results match the serial oracle
    /// bit for bit.
    fn evaluate_batch(&mut self, jobs: &[(usize, Vec<f64>)]) -> Vec<f64> {
        self.evaluations += jobs.len();
        self.rounds += 1;
        // Out-of-band round timing, gated on the sink's appetite so
        // untimed oracles never read the clock.
        let round_timer = self
            .telemetry
            .as_ref()
            .filter(|sink| sink.wants_timing())
            .map(|_| std::time::Instant::now());
        let pool = rlpta_threadpool::ThreadPool::new(self.threads);
        let costs: Vec<f64> = pool
            .map(jobs, |(circuit, w)| {
                run_stats(
                    self.kind,
                    &self.config,
                    &self.budget,
                    &self.circuits[*circuit],
                    PtaParams::from_w(w),
                )
            })
            .into_iter()
            // A panicked job (impossible under normal operation) counts as a
            // divergence rather than aborting a long offline training run.
            .map(|r| stats_cost(r.unwrap_or(None)))
            .collect();
        if let Some(sink) = &self.telemetry {
            if let Some(t0) = round_timer {
                sink.emit(&Event {
                    span: Span::default(),
                    payload: Payload::PhaseTiming {
                        phase: crate::telemetry::Phase::GpAcquisition,
                        nanos: t0.elapsed().as_nanos() as u64,
                    },
                });
            }
            sink.emit(&Event {
                span: Span::default(),
                payload: Payload::AcquisitionRound {
                    round: self.rounds,
                    evaluations: self.evaluations,
                    best_cost: costs.iter().copied().fold(f64::INFINITY, f64::min),
                },
            });
        }
        costs
    }
}

/// Convenience: the untuned default parameters (`z = (1,1,1)`, i.e.
/// `w = 0`) the paper's Table 2 baselines use.
pub fn default_pta_params() -> PtaParams {
    PtaParams::default()
}

/// Online prediction (Eq. 3): proposes [`PtaParams`] for an unseen circuit
/// from a trained [`ActiveLearner`].
///
/// # Errors
///
/// Propagates [`GpError`] when the learner holds no data.
pub fn predict_params(
    learner: &ActiveLearner,
    features: &[f64],
    is_bjt: bool,
    rng: &mut impl rand::Rng,
) -> Result<PtaParams, GpError> {
    let w = learner.predict_best(features, is_bjt, rng)?;
    Ok(PtaParams::from_w(&w))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rlpta_gp::{ActiveLearnerConfig, IterationOracle};
    use rlpta_mna::CircuitFeatures;

    fn training_circuits() -> Vec<Circuit> {
        vec![
            rlpta_netlist::parse(
                "c1\nV1 in 0 5\nR1 in out 1k\nD1 out 0 DX\n.model DX D(IS=1e-14)",
            )
            .unwrap(),
            rlpta_netlist::parse(
                "c2\nV1 vcc 0 9\nR1 vcc b 56k\nR2 b 0 12k\nRC vcc c 3k\nRE e 0 680\nQ1 c b e QN\n.model QN NPN(IS=1e-15 BF=150)",
            )
            .unwrap(),
        ]
    }

    #[test]
    fn oracle_returns_log_iterations() {
        let circuits = training_circuits();
        let mut oracle = IppOracle::new(&circuits, PtaKind::Pure);
        let cost = oracle.evaluate(0, &[0.0, 0.0, 0.0]);
        assert!(cost > 0.0 && cost < DIVERGED_COST, "cost = {cost}");
        assert_eq!(oracle.evaluations(), 1);
    }

    #[test]
    fn oracle_penalizes_divergence() {
        let circuits = training_circuits();
        let mut oracle = IppOracle::new(&circuits, PtaKind::Pure);
        // Grotesquely mismatched pseudo elements: enormous C with tiny
        // budget makes the run exceed max_steps.
        oracle.config.max_steps = 2;
        let cost = oracle.evaluate(0, &[8.0, -8.0, 0.0]);
        assert_eq!(cost, DIVERGED_COST);
    }

    #[test]
    fn pooled_batch_matches_serial_costs() {
        let circuits = training_circuits();
        let jobs = vec![
            (0usize, vec![0.0, 0.0, 0.0]),
            (1, vec![0.5, -0.5, 0.0]),
            (0, vec![1.0, 1.0, 1.0]),
        ];
        let mut serial = IppOracle::new(&circuits, PtaKind::Pure);
        let expected: Vec<f64> = jobs.iter().map(|(c, w)| serial.evaluate(*c, w)).collect();
        let mut pooled = IppOracle::new(&circuits, PtaKind::Pure).with_threads(3);
        let got = pooled.evaluate_batch(&jobs);
        assert_eq!(got, expected, "pooled batch must match serial bit for bit");
        assert_eq!(pooled.evaluations(), jobs.len());
    }

    #[test]
    fn end_to_end_ipp_improves_a_circuit() {
        let circuits = training_circuits();
        let features: Vec<Vec<f64>> = circuits
            .iter()
            .map(|c| CircuitFeatures::extract(c).to_vec())
            .collect();
        let flags: Vec<bool> = circuits
            .iter()
            .map(|c| CircuitFeatures::extract(c).is_bjt)
            .collect();
        let mut learner = ActiveLearner::new(
            features.clone(),
            flags.clone(),
            ActiveLearnerConfig {
                rounds: 1,
                mle_starts: 4,
                ei_candidates: 16,
                w_range: 3.0,
            },
        );
        let mut oracle = IppOracle::new(&circuits, PtaKind::Pure);
        let mut rng = StdRng::seed_from_u64(1);
        learner.offline_train(&mut oracle, &mut rng).unwrap();
        assert!(learner.samples().len() >= 4, "seed + 1 round");
        let params = predict_params(&learner, &features[0], flags[0], &mut rng).unwrap();
        assert!(params.c_node > 0.0 && params.c_node.is_finite());
    }
}
