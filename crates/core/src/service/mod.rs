//! The long-lived simulation service: cross-request reuse above the engine.
//!
//! [`DcEngine`] deliberately owns no state between calls — every solve is a
//! pure function of its inputs, which is what makes batches and sweeps
//! deterministic. Production traffic, however, is dominated by *repeats*:
//! millions of requests share a handful of circuit topologies and differ
//! only in parameter values. [`SimService`] is the layer that exploits
//! that, owning three pieces of cross-request state:
//!
//! 1. **A sharded, structure-keyed plan cache.** [`StructureKey`] hashes the
//!    MNA sparsity pattern together with the device topology (kinds,
//!    terminal wiring, branch unknowns) — and deliberately *not* parameter
//!    values, so a 1 kΩ and a 2 kΩ divider share a key. Each entry holds the
//!    [`SymbolicLu`] scatter plan recorded by an earlier solve (an
//!    [`Arc`], shared with the workspaces that replay it), the resolved
//!    [`StampPlan`] (so warm jobs skip stamp resolution and go straight to
//!    the slot-table write pass) plus the last certified operating point as
//!    a warm start. Eviction is LRU under a
//!    byte budget; a cached plan that no longer matches the assembled
//!    pattern (a hash collision, or a structural change that kept the key)
//!    is **invalidated and re-recorded, never replayed stale** — and even a
//!    bypassed check would be caught by [`LuWorkspace`]'s own guarded-replay
//!    fallback, so staleness can cost time, not correctness.
//! 2. **A bounded priority job queue with admission control.** Work enters
//!    as ([`Circuit`], [`JobTicket`]) pairs; a full queue refuses new work
//!    with [`ServiceError::QueueFull`] and a ticket whose deadline cannot
//!    be met refuses with [`ServiceError::DeadlineUnmeetable`] — callers
//!    get backpressure instead of unbounded latency. [`SimService::drain`]
//!    executes the queue on the engine's thread pool, grouping jobs that
//!    share a [`StructureKey`] into the same worker so a cached plan is
//!    fetched once and stays core-local for the whole group (the group also
//!    forms a warm-start chain, like a sweep chunk).
//! 3. **A shared RL-policy handle.** A frozen, checkpointed
//!    [`RlStepping`] policy is loaded once at service construction and
//!    cloned per job that needs it (a cold solve the plain Newton path
//!    cannot crack), instead of being re-loaded per request.
//!
//! Every cache and queue transition is published on the engine's telemetry
//! stream ([`Payload::CacheHit`], [`Payload::CacheMiss`],
//! [`Payload::CacheEvicted`], [`Payload::JobQueued`],
//! [`Payload::JobAdmitted`]), so the existing
//! [`MetricsRegistry`](crate::telemetry::MetricsRegistry) counts them with
//! no further wiring.
//!
//! # Determinism
//!
//! Draining inherits the engine's contract: job grouping and intra-group
//! order depend only on submission order and ticket priorities, group
//! chains reuse one workspace exactly like sweep chunks, and results come
//! back keyed by [`JobId`] in submission order — the same queue drains to
//! bit-identical solutions at every thread count.
//!
//! # Example
//!
//! ```
//! use rlpta_core::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let circuit = rlpta_netlist::parse(
//!     "divider\nV1 in 0 5\nR1 in out 1k\nR2 out 0 1k",
//! )?;
//! let mut service = SimService::builder(DcEngine::builder().build()).build();
//! let a = service.submit(circuit.clone(), JobTicket::default())?;
//! let b = service.submit(circuit.clone(), JobTicket::default())?;
//! let results = service.drain();
//! assert_eq!(results.len(), 2);
//! assert!(results.iter().all(|(_, r)| r.is_ok()));
//! assert_eq!((results[0].0, results[1].0), (a, b));
//! // Same structure, same drain: one group, one cache lookup (a miss —
//! // the cache was empty), the plan shared inside the group.
//! assert_eq!(service.cache_stats().misses, 1);
//! // A later request replays the now-cached symbolic analysis:
//! service.submit(circuit, JobTicket::default())?;
//! service.drain();
//! assert_eq!(service.cache_stats().hits, 1);
//! # Ok(())
//! # }
//! ```

// The service types are this crate's outward-facing v1 surface: every
// public struct must stay extensible without a major version bump.
#![deny(clippy::exhaustive_structs)]

pub mod observe;

pub use observe::{HeartbeatLine, ServiceMonitor, ServiceSnapshot};

use crate::assembly::AssemblyWorkspace;
use crate::engine::DcEngine;
use crate::error::SolveError;
use crate::recovery::SolveBudget;
use crate::rl_stepping::{RlStepping, RlSteppingConfig};
use crate::telemetry::{FanoutSink, FlightRecorder, MetricsRegistry, Payload, Sink, Span, Tele};
use crate::Solution;
use observe::priority_index;
use rlpta_devices::{Device, EvalCtx};
use rlpta_linalg::{CsrMatrix, FnvHasher, LuWorkspace, SymbolicLu};
use rlpta_mna::{Circuit, StampPlan};
use rlpta_threadpool::ThreadPool;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Identifies one submitted job; returned by [`SimService::submit`] and
/// carried back by [`SimService::drain`]. Ids are assigned in submission
/// order and never reused within a service instance.
pub type JobId = usize;

// ---------------------------------------------------------------------------
// StructureKey
// ---------------------------------------------------------------------------

/// A stable digest of a circuit's *structure*: the MNA sparsity pattern
/// plus the device topology (kinds, terminal wiring, branch-unknown
/// layout). Parameter values are deliberately excluded — circuits that
/// differ only in component values share a key, which is exactly the
/// population whose symbolic LU analysis is interchangeable.
///
/// The key carries the MNA dimension and pattern entry count alongside the
/// hash, so two keys are equal only when hash *and* both counts agree;
/// beyond that, every cache hit re-verifies the cached plan against the
/// assembled pattern ([`SymbolicLu::compatible_with`]) before replaying —
/// a collision is detected, counted as an invalidation, and re-analyzed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StructureKey {
    dim: usize,
    nnz: usize,
    hash: u64,
}

impl StructureKey {
    /// Computes the key for `circuit` (assembling its Jacobian pattern once
    /// at the zero operating point — device stamps touch the same matrix
    /// positions at every operating point, so the pattern is
    /// representative).
    pub fn of(circuit: &Circuit) -> Self {
        Self::with_matrix(circuit).0
    }

    /// [`StructureKey::of`] plus the assembled pattern, for callers that
    /// need the matrix to validate a cached plan without assembling twice.
    pub(crate) fn with_matrix(circuit: &Circuit) -> (Self, CsrMatrix) {
        let x0 = vec![0.0; circuit.dim()];
        let (triplet, _rhs) = circuit.assemble(&EvalCtx::dc(&x0));
        let csr = triplet.to_csr();
        let mut h = FnvHasher::new();
        h.write_u64(csr.pattern_hash());
        h.write_usize(circuit.num_nodes());
        h.write_usize(circuit.num_branches());
        h.write_usize(circuit.state_len());
        for device in circuit.devices() {
            h.write_u64(device_tag(device));
            h.write_usize(device.branch_count());
            for node in device.nodes() {
                h.write_u64(node.index().map_or(u64::MAX, |i| i as u64));
            }
        }
        let key = Self {
            dim: circuit.dim(),
            nnz: csr.nnz(),
            hash: h.finish(),
        };
        (key, csr)
    }

    /// MNA dimension of the keyed structure.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Entry count of the keyed sparsity pattern.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// The combined pattern + topology hash (the value carried by the
    /// cache telemetry events).
    pub fn hash(&self) -> u64 {
        self.hash
    }
}

impl fmt::Display for StructureKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}/d{}n{}", self.hash, self.dim, self.nnz)
    }
}

/// Stable per-variant tag; the wildcard arm covers future device kinds
/// added behind `#[non_exhaustive]` (they still key distinctly from every
/// current kind, just not from each other until given a tag).
fn device_tag(device: &Device) -> u64 {
    match device {
        Device::Resistor(_) => 1,
        Device::Capacitor(_) => 2,
        Device::Inductor(_) => 3,
        Device::Vsource(_) => 4,
        Device::Isource(_) => 5,
        Device::Vcvs(_) => 6,
        Device::Vccs(_) => 7,
        Device::Cccs(_) => 8,
        Device::Ccvs(_) => 9,
        Device::Diode(_) => 10,
        Device::Bjt(_) => 11,
        Device::Mosfet(_) => 12,
        Device::Jfet(_) => 13,
        _ => u64::MAX,
    }
}

// ---------------------------------------------------------------------------
// Tickets and errors
// ---------------------------------------------------------------------------

/// Scheduling class of a [`JobTicket`]. Higher priorities drain first (and
/// lead their topology group's warm-start chain); within a priority, jobs
/// run in submission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[non_exhaustive]
pub enum Priority {
    /// Background work: bulk re-characterization, speculative solves.
    Low,
    /// Interactive traffic (the default).
    #[default]
    Normal,
    /// Latency-sensitive traffic.
    High,
    /// Drop-everything traffic (e.g. a solve blocking a tape-out check).
    Critical,
}

impl Priority {
    /// Short lowercase name, used in telemetry events.
    pub fn as_str(&self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
            Priority::Critical => "critical",
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Per-job scheduling contract handed to [`SimService::submit`]: a
/// priority class, an optional deadline (measured from submission) and an
/// optional per-job [`SolveBudget`] overriding the engine's.
///
/// Construct with [`JobTicket::default`] and the `with_*` methods:
///
/// ```
/// use rlpta_core::service::{JobTicket, Priority};
/// use std::time::Duration;
///
/// let ticket = JobTicket::default()
///     .with_priority(Priority::High)
///     .with_deadline(Duration::from_secs(5));
/// assert_eq!(ticket.priority, Priority::High);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[non_exhaustive]
pub struct JobTicket {
    /// Scheduling class; see [`Priority`].
    pub priority: Priority,
    /// Latest acceptable completion, measured from submission. `None`
    /// means the job waits as long as it takes.
    pub deadline: Option<Duration>,
    /// Per-job resource budget; `None` inherits the engine's budget.
    pub budget: Option<SolveBudget>,
}

impl JobTicket {
    /// Returns the ticket with a different [`Priority`].
    #[must_use]
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Returns the ticket with a completion deadline (from submission).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Returns the ticket with a per-job [`SolveBudget`] override.
    #[must_use]
    pub fn with_budget(mut self, budget: SolveBudget) -> Self {
        self.budget = Some(budget);
        self
    }
}

/// Errors surfaced by [`SimService`] — the service-side siblings of
/// [`SolveError`], shaped the same way (non-exhaustive, actionable
/// [`Display`](fmt::Display) context, [`Error::source`] chaining) so
/// callers handle one error family end to end.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServiceError {
    /// The bounded job queue is full; the caller should retry after a
    /// drain, shed load, or build the service with a larger
    /// [`queue_capacity`](SimServiceBuilder::queue_capacity).
    QueueFull {
        /// The configured queue capacity that was hit.
        capacity: usize,
    },
    /// The ticket's deadline cannot be met — it is zero, shorter than the
    /// job's own wall-clock solve budget, or it expired while the job
    /// waited in the queue. Resubmit with a looser deadline, a higher
    /// [`Priority`], or a tighter budget.
    DeadlineUnmeetable {
        /// The deadline the ticket asked for.
        deadline: Duration,
        /// Why it cannot be met.
        detail: String,
    },
    /// The solve itself failed; see the wrapped [`SolveError`].
    Solve(SolveError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::QueueFull { capacity } => write!(
                f,
                "job queue full ({capacity} jobs queued); drain the service or \
                 raise queue_capacity"
            ),
            ServiceError::DeadlineUnmeetable { deadline, detail } => write!(
                f,
                "deadline of {deadline:?} cannot be met: {detail}"
            ),
            ServiceError::Solve(e) => write!(f, "solve failed: {e}"),
        }
    }
}

impl Error for ServiceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServiceError::Solve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SolveError> for ServiceError {
    fn from(e: SolveError) -> Self {
        ServiceError::Solve(e)
    }
}

// ---------------------------------------------------------------------------
// Plan cache
// ---------------------------------------------------------------------------

/// Cache effectiveness counters, cumulative since service construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct CacheStats {
    /// Lookups that found a compatible plan.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries dropped by LRU eviction under the byte budget.
    pub evictions: u64,
    /// Entries dropped because the cached plan no longer matched the
    /// assembled pattern (hash collision or structural drift): counted as
    /// a miss *and* an invalidation.
    pub invalidations: u64,
    /// Lookups whose entry also carried a stamp plan still compatible with
    /// the circuit — the group skips stamp resolution entirely.
    pub plan_hits: u64,
    /// Lookups that had to (re-)resolve a stamp plan: a cold structure, an
    /// entry predating plan capture, or a plan that failed re-verification.
    pub plan_misses: u64,
}

impl CacheStats {
    /// Hit fraction of all lookups; `0.0` before the first lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct CacheEntry {
    symbolic: Arc<SymbolicLu>,
    /// Resolved stamp plan for this structure (shared with the assembly
    /// workspaces that scatter through it); `None` for entries recorded by
    /// a triplet-mode engine.
    plan: Option<Arc<StampPlan>>,
    /// Last certified operating point for this structure, reusable as a
    /// warm start by the next job with the same key.
    warm: Option<Vec<f64>>,
    bytes: usize,
    last_used: u64,
}

struct Shard {
    entries: HashMap<StructureKey, CacheEntry>,
    bytes: usize,
}

/// The sharded structure-keyed cache. Shard choice is a pure function of
/// the key, eviction order is a pure function of the (monotonic) access
/// ticks, so the cache's behavior is deterministic for a given request
/// sequence.
struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard byte budget.
    shard_budget: usize,
    tick: Mutex<u64>,
    stats: Mutex<CacheStats>,
}

struct CacheSeed {
    symbolic: Arc<SymbolicLu>,
    plan: Option<Arc<StampPlan>>,
    warm: Option<Vec<f64>>,
}

impl PlanCache {
    fn new(total_bytes: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: HashMap::new(),
                        bytes: 0,
                    })
                })
                .collect(),
            shard_budget: (total_bytes / shards).max(1),
            tick: Mutex::new(0),
            stats: Mutex::new(CacheStats::default()),
        }
    }

    fn shard(&self, key: &StructureKey) -> &Mutex<Shard> {
        &self.shards[(key.hash as usize) % self.shards.len()]
    }

    fn next_tick(&self) -> u64 {
        let mut t = lock(&self.tick);
        *t += 1;
        *t
    }

    /// Looks `key` up, verifying the cached plan against the freshly
    /// assembled pattern. An incompatible entry is removed (invalidation)
    /// and reported as a miss — the service re-records a fresh analysis
    /// rather than replaying a stale plan. A cached *stamp plan* is
    /// re-verified against the circuit the same way (a cheap structural
    /// declare pass); a stale plan is dropped from the seed, never
    /// scattered through.
    fn lookup(
        &self,
        key: &StructureKey,
        pattern: &CsrMatrix,
        circuit: &Circuit,
        tele: &Tele<'_>,
    ) -> Option<CacheSeed> {
        let tick = self.next_tick();
        let mut shard = lock(self.shard(key));
        let compatible = match shard.entries.get_mut(key) {
            Some(entry) => {
                if entry.symbolic.compatible_with(pattern) {
                    entry.last_used = tick;
                    true
                } else {
                    false
                }
            }
            None => {
                drop(shard);
                let mut stats = lock(&self.stats);
                stats.misses += 1;
                stats.plan_misses += 1;
                drop(stats);
                tele.emit(Payload::CacheMiss {
                    key: key.hash,
                    dim: key.dim,
                });
                return None;
            }
        };
        if compatible {
            let entry = &shard.entries[key];
            let plan = entry
                .plan
                .as_ref()
                .filter(|p| p.compatible_with(circuit))
                .map(Arc::clone);
            let seed = CacheSeed {
                symbolic: Arc::clone(&entry.symbolic),
                plan,
                warm: entry.warm.clone(),
            };
            drop(shard);
            let mut stats = lock(&self.stats);
            stats.hits += 1;
            if seed.plan.is_some() {
                stats.plan_hits += 1;
            } else {
                stats.plan_misses += 1;
            }
            drop(stats);
            tele.emit(Payload::CacheHit {
                key: key.hash,
                dim: key.dim,
            });
            Some(seed)
        } else {
            if let Some(dead) = shard.entries.remove(key) {
                shard.bytes = shard.bytes.saturating_sub(dead.bytes);
            }
            drop(shard);
            let mut stats = lock(&self.stats);
            stats.invalidations += 1;
            stats.misses += 1;
            stats.plan_misses += 1;
            drop(stats);
            tele.emit(Payload::CacheMiss {
                key: key.hash,
                dim: key.dim,
            });
            None
        }
    }

    /// Inserts or refreshes the entry for `key`, then evicts
    /// least-recently-used entries (never the one just inserted) until the
    /// shard is back under its byte budget.
    fn insert(
        &self,
        key: StructureKey,
        symbolic: Arc<SymbolicLu>,
        plan: Option<Arc<StampPlan>>,
        warm: Option<Vec<f64>>,
        tele: &Tele<'_>,
    ) {
        let tick = self.next_tick();
        let bytes = symbolic.approx_bytes()
            + plan.as_ref().map_or(0, |p| p.approx_bytes())
            + warm.as_ref().map_or(0, |w| w.len() * std::mem::size_of::<f64>());
        let mut shard = lock(self.shard(&key));
        if let Some(old) = shard.entries.insert(
            key,
            CacheEntry {
                symbolic,
                plan,
                warm,
                bytes,
                last_used: tick,
            },
        ) {
            shard.bytes = shard.bytes.saturating_sub(old.bytes);
        }
        shard.bytes += bytes;
        let mut evicted = Vec::new();
        while shard.bytes > self.shard_budget && shard.entries.len() > 1 {
            // Ticks are unique, so the minimum is unique: eviction order
            // does not depend on HashMap iteration order.
            let Some((&victim, _)) = shard
                .entries
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.last_used)
            else {
                break;
            };
            if let Some(dead) = shard.entries.remove(&victim) {
                shard.bytes = shard.bytes.saturating_sub(dead.bytes);
                evicted.push((victim, dead.bytes));
            }
        }
        drop(shard);
        if !evicted.is_empty() {
            lock(&self.stats).evictions += evicted.len() as u64;
            for (victim, bytes) in evicted {
                tele.emit(Payload::CacheEvicted {
                    key: victim.hash,
                    bytes,
                });
            }
        }
    }

    fn stats(&self) -> CacheStats {
        *lock(&self.stats)
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| lock(s).entries.len()).sum()
    }
}

/// Mutex lock that survives a poisoned lock (a panicked worker must not
/// take the whole service down — the cache only holds re-derivable state).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

// ---------------------------------------------------------------------------
// The service
// ---------------------------------------------------------------------------

/// Configures a [`SimService`]; see the [module docs](self) for the
/// architecture. Obtain via [`SimService::builder`].
#[derive(Clone)]
pub struct SimServiceBuilder {
    engine: DcEngine,
    queue_capacity: usize,
    cache_bytes: usize,
    cache_shards: usize,
    warm_starts: bool,
    policy: Option<Arc<RlStepping>>,
    recorder_depth: Option<usize>,
    recorder: Option<Arc<FlightRecorder>>,
    incident_dir: Option<PathBuf>,
    incident_cap: Option<usize>,
    heartbeat: Option<Duration>,
    heartbeat_path: Option<PathBuf>,
    watchdog_factor: Option<f64>,
    registry: Option<Arc<MetricsRegistry>>,
}

impl SimServiceBuilder {
    /// Maximum queued jobs before [`SimService::submit`] refuses with
    /// [`ServiceError::QueueFull`]. Default 1024; clamped to at least 1.
    #[must_use]
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Total byte budget for cached symbolic plans and warm-start vectors,
    /// split evenly across the shards. Default 8 MiB.
    #[must_use]
    pub fn cache_bytes(mut self, bytes: usize) -> Self {
        self.cache_bytes = bytes;
        self
    }

    /// Number of independent cache shards (each with its own lock and LRU
    /// order). Default 8; clamped to at least 1.
    #[must_use]
    pub fn cache_shards(mut self, shards: usize) -> Self {
        self.cache_shards = shards.max(1);
        self
    }

    /// Whether cached last-certified operating points seed subsequent
    /// solves of the same structure (default `true`). Disable to make
    /// every service solve start from zeros — cached-plan replay alone is
    /// bit-identical to a cold solve, which is what the bit-identity
    /// proptests pin down.
    #[must_use]
    pub fn warm_starts(mut self, enabled: bool) -> Self {
        self.warm_starts = enabled;
        self
    }

    /// Shares a pre-trained stepping policy across all jobs. The policy is
    /// frozen at build time (training disabled, greedy deterministic
    /// actions) and cloned per job that needs it — a cold solve that the
    /// warm Newton path and its recovery ladder cannot crack gets one
    /// RL-steered PTA attempt before the failure is surfaced.
    #[must_use]
    pub fn policy(mut self, policy: Arc<RlStepping>) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Loads a checkpointed policy (see [`RlStepping::save_policy`]) and
    /// installs it via [`SimServiceBuilder::policy`].
    ///
    /// # Errors
    ///
    /// I/O or format errors from [`RlStepping::load_policy`].
    pub fn policy_from_reader(
        self,
        config: RlSteppingConfig,
        r: &mut dyn std::io::BufRead,
    ) -> std::io::Result<Self> {
        let mut policy = RlStepping::load_policy(config, r)?;
        policy.freeze();
        Ok(self.policy(Arc::new(policy)))
    }

    /// Attaches a [`FlightRecorder`] keeping the last `depth` events per
    /// in-flight job, teed into the engine's telemetry stream. Incidents
    /// stay in memory unless [`incident_dir`](Self::incident_dir) is also
    /// set. See the [recorder docs](crate::telemetry::recorder).
    #[must_use]
    pub fn recorder(mut self, depth: usize) -> Self {
        self.recorder_depth = Some(depth);
        self
    }

    /// Attaches a pre-configured recorder (e.g. one built with
    /// [`FlightRecorder::trigger_on_rejected`] or a custom slot count, or
    /// one shared with other engines). Overrides
    /// [`recorder`](Self::recorder) / [`incident_dir`](Self::incident_dir)
    /// / [`incident_cap`](Self::incident_cap), which configure the
    /// service-built recorder only.
    #[must_use]
    pub fn recorder_with(mut self, recorder: Arc<FlightRecorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Directory the service-built recorder serializes incident reports
    /// into (implies [`recorder`](Self::recorder) at a default depth of 64
    /// if no depth was set).
    #[must_use]
    pub fn incident_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.incident_dir = Some(dir.into());
        self
    }

    /// Per-run incident cap for the service-built recorder (default 256).
    #[must_use]
    pub fn incident_cap(mut self, cap: usize) -> Self {
        self.incident_cap = Some(cap);
        self
    }

    /// Appends one [`HeartbeatLine`] to the path set via
    /// [`heartbeat_path`](Self::heartbeat_path) whenever `interval` has
    /// elapsed at a [`tick`](SimService::tick) (ticks run after every
    /// submit/drain/solve).
    #[must_use]
    pub fn heartbeat(mut self, interval: Duration) -> Self {
        self.heartbeat = Some(interval);
        self
    }

    /// JSONL file the heartbeat stream appends to (implies
    /// [`heartbeat`](Self::heartbeat) at a default 1 s interval if no
    /// interval was set). `rlpta monitor` tails this file.
    #[must_use]
    pub fn heartbeat_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.heartbeat_path = Some(path.into());
        self
    }

    /// Enables the deadline watchdog: any job older than
    /// `deadline × factor` is flagged once with [`Payload::Watchdog`]
    /// (a flight-recorder trigger). `factor` is clamped to at least 1.
    /// Off by default — the watchdog reads the wall clock, so the
    /// determinism contract only covers services without it.
    #[must_use]
    pub fn watchdog(mut self, factor: f64) -> Self {
        self.watchdog_factor = Some(if factor < 1.0 { 1.0 } else { factor });
        self
    }

    /// Tees `registry` into the engine's telemetry stream and snapshots
    /// its per-phase histograms into [`ServiceSnapshot::phases`] and every
    /// incident report.
    #[must_use]
    pub fn metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Finalizes the service. Any installed policy is frozen here, so a
    /// still-training controller cannot leak nondeterminism into the
    /// service path. A configured recorder or metrics registry is teed
    /// into the engine's telemetry sink here, so every event the engine
    /// emits while serving also reaches them.
    pub fn build(self) -> SimService {
        let policy = self.policy.map(|p| {
            if p.is_frozen() {
                p
            } else {
                let mut frozen = (*p).clone();
                frozen.freeze();
                Arc::new(frozen)
            }
        });
        let recorder = match self.recorder {
            Some(rec) => Some(rec),
            None if self.recorder_depth.is_some() || self.incident_dir.is_some() => {
                let mut rec = FlightRecorder::new(self.recorder_depth.unwrap_or(64));
                if let Some(dir) = &self.incident_dir {
                    rec = rec.with_dir(dir);
                }
                if let Some(cap) = self.incident_cap {
                    rec = rec.with_incident_cap(cap);
                }
                if let Some(reg) = &self.registry {
                    rec = rec.with_registry(Arc::clone(reg));
                }
                Some(Arc::new(rec))
            }
            None => None,
        };
        let engine = if recorder.is_some() || self.registry.is_some() {
            let mut fan = FanoutSink::new().with(self.engine.telemetry());
            if let Some(reg) = &self.registry {
                fan = fan.with(Arc::clone(reg) as Arc<dyn Sink>);
            }
            if let Some(rec) = &recorder {
                fan = fan.with(Arc::clone(rec) as Arc<dyn Sink>);
            }
            self.engine.with_telemetry(Arc::new(fan))
        } else {
            self.engine
        };
        SimService {
            cache: PlanCache::new(self.cache_bytes, self.cache_shards),
            queue: Vec::new(),
            next_id: 0,
            queue_capacity: self.queue_capacity,
            warm_starts: self.warm_starts,
            policy,
            recorder,
            monitor: ServiceMonitor::new(
                self.heartbeat
                    .or(self.heartbeat_path.as_ref().map(|_| Duration::from_secs(1))),
                self.heartbeat_path,
                self.watchdog_factor,
                self.registry,
            ),
            engine,
        }
    }
}

/// One queued job, with its structure analysis done at admission time.
struct QueuedJob {
    seq: JobId,
    circuit: Circuit,
    ticket: JobTicket,
    submitted: Instant,
    key: StructureKey,
    pattern: CsrMatrix,
    /// Whether the queue-scan watchdog already flagged this job (each job
    /// fires at most once while queued).
    watchdog_flagged: bool,
}

/// The long-lived simulation service; see the [module docs](self).
pub struct SimService {
    engine: DcEngine,
    cache: PlanCache,
    queue: Vec<QueuedJob>,
    next_id: JobId,
    queue_capacity: usize,
    warm_starts: bool,
    policy: Option<Arc<RlStepping>>,
    recorder: Option<Arc<FlightRecorder>>,
    monitor: ServiceMonitor,
}

impl SimService {
    /// Starts configuring a service around `engine`. The engine's
    /// telemetry sink and thread count are inherited by the service.
    pub fn builder(engine: DcEngine) -> SimServiceBuilder {
        SimServiceBuilder {
            engine,
            queue_capacity: 1024,
            cache_bytes: 8 * 1024 * 1024,
            cache_shards: 8,
            warm_starts: true,
            policy: None,
            recorder_depth: None,
            recorder: None,
            incident_dir: None,
            incident_cap: None,
            heartbeat: None,
            heartbeat_path: None,
            watchdog_factor: None,
            registry: None,
        }
    }

    /// The attached flight recorder, if any (inspect incidents, windows
    /// and drop counts; see [`FlightRecorder`]).
    pub fn recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.recorder.as_ref()
    }

    /// The engine this service drives.
    pub fn engine(&self) -> &DcEngine {
        &self.engine
    }

    /// Jobs currently waiting for [`SimService::drain`].
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Cumulative plan-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Number of structures currently cached.
    pub fn cached_structures(&self) -> usize {
        self.cache.len()
    }

    /// Admits one job into the queue, returning its [`JobId`].
    ///
    /// Admission analyzes the circuit's structure once (the analysis is
    /// reused at drain time) and applies backpressure:
    ///
    /// # Errors
    ///
    /// [`ServiceError::QueueFull`] when the queue is at capacity;
    /// [`ServiceError::DeadlineUnmeetable`] when the ticket's deadline is
    /// zero or shorter than the job's own wall-clock solve budget.
    pub fn submit(&mut self, circuit: Circuit, ticket: JobTicket) -> Result<JobId, ServiceError> {
        if self.queue.len() >= self.queue_capacity {
            self.monitor.counters.rejected_queue_full += 1;
            return Err(ServiceError::QueueFull {
                capacity: self.queue_capacity,
            });
        }
        if let Some(deadline) = ticket.deadline {
            if deadline.is_zero() {
                self.monitor.counters.rejected_deadline += 1;
                return Err(ServiceError::DeadlineUnmeetable {
                    deadline,
                    detail: "deadline is zero".to_string(),
                });
            }
            let wall = ticket
                .budget
                .as_ref()
                .map_or(self.engine.budget().wall_clock, |b| b.wall_clock);
            if let Some(wall) = wall {
                if wall > deadline {
                    self.monitor.counters.rejected_deadline += 1;
                    return Err(ServiceError::DeadlineUnmeetable {
                        deadline,
                        detail: format!(
                            "the job's wall-clock solve budget ({wall:?}) alone exceeds it"
                        ),
                    });
                }
            }
        }
        let (key, pattern) = StructureKey::with_matrix(&circuit);
        let seq = self.next_id;
        self.next_id += 1;
        self.monitor.counters.submitted[priority_index(ticket.priority)] += 1;
        if let Some(rec) = &self.recorder {
            rec.annotate(Some(seq), circuit.title(), Some(key.hash));
        }
        self.queue.push(QueuedJob {
            seq,
            circuit,
            ticket,
            submitted: Instant::now(),
            key,
            pattern,
            watchdog_flagged: false,
        });
        let sink = self.engine.telemetry();
        Tele::root(&*sink, Span::default()).emit(Payload::JobQueued {
            job: seq,
            priority: ticket.priority.as_str().to_string(),
            depth: self.queue.len(),
        });
        self.tick();
        Ok(seq)
    }

    /// Executes every queued job and returns `(id, result)` pairs in
    /// submission order.
    ///
    /// Jobs are ordered by ([`Priority`] descending, submission order),
    /// then grouped by [`StructureKey`]; each group runs as one job on the
    /// engine's thread pool, sharing a single pre-seeded [`LuWorkspace`]
    /// and (when enabled) a warm-start chain. After the pool completes,
    /// each group's final symbolic plan and last certified operating point
    /// refresh the cache.
    pub fn drain(&mut self) -> Vec<(JobId, Result<Solution, ServiceError>)> {
        let mut jobs = std::mem::take(&mut self.queue);
        if jobs.is_empty() {
            return Vec::new();
        }
        jobs.sort_by_key(|j| (std::cmp::Reverse(j.ticket.priority), j.seq));

        // Group by structure, groups ordered by their best job.
        let mut group_of: HashMap<StructureKey, usize> = HashMap::new();
        let mut groups: Vec<(StructureKey, Vec<QueuedJob>)> = Vec::new();
        for job in jobs {
            match group_of.get(&job.key) {
                Some(&g) => groups[g].1.push(job),
                None => {
                    group_of.insert(job.key, groups.len());
                    groups.push((job.key, vec![job]));
                }
            }
        }

        let sink = self.engine.telemetry();
        let tele = Tele::root(&*sink, Span::default());
        // Cache lookups happen serially up front (one per group — the
        // whole group rides one seed), so the drain's cache transitions
        // are independent of worker scheduling.
        let prepared: Vec<(StructureKey, Vec<QueuedJob>, Option<CacheSeed>)> = groups
            .into_iter()
            .map(|(key, jobs)| {
                let seed = self
                    .cache
                    .lookup(&key, &jobs[0].pattern, &jobs[0].circuit, &tele);
                for job in &jobs {
                    tele.emit(Payload::JobAdmitted {
                        job: job.seq,
                        key: key.hash,
                    });
                }
                (key, jobs, seed)
            })
            .collect();

        let engine = &self.engine;
        let policy = self.policy.as_ref();
        let warm_starts = self.warm_starts;
        let watchdog_factor = self.monitor.watchdog_factor;
        let pooled = ThreadPool::new(engine.threads()).run(
            prepared
                .into_iter()
                .map(|(key, jobs, seed)| {
                    move || {
                        (
                            key,
                            run_group(engine, policy, warm_starts, jobs, seed, watchdog_factor),
                        )
                    }
                })
                .collect::<Vec<_>>(),
        );

        let mut out: Vec<(JobId, Result<Solution, ServiceError>)> = Vec::new();
        for slot in pooled {
            match slot {
                Ok((key, group)) => {
                    self.monitor.counters.watchdog_fires += group.watchdog_fires;
                    self.monitor.counters.deadline_misses += group.deadline_misses;
                    if let Some(symbolic) = group.symbolic {
                        self.cache.insert(
                            key,
                            Arc::new(symbolic),
                            group.plan,
                            if self.warm_starts { group.warm } else { None },
                            &tele,
                        );
                    }
                    out.extend(group.results);
                }
                Err(panic) => {
                    // The pool isolates the panic to this group; its jobs'
                    // ids are unrecoverable from the closure, so the
                    // caller sees the loss via the missing slots… which
                    // would break the contract. Instead the group closure
                    // is panic-free by construction: every solver error is
                    // a value. This arm is defense in depth.
                    out.push((
                        usize::MAX,
                        Err(ServiceError::Solve(SolveError::WorkerPanic {
                            detail: panic.to_string(),
                        })),
                    ));
                }
            }
        }
        out.sort_by_key(|(id, _)| *id);
        for (_, result) in &out {
            self.monitor.counters.note_result(result);
        }
        self.tick();
        out
    }

    /// Convenience path for a single request: runs `circuit` through the
    /// cache (without touching the queue) and returns the solution.
    ///
    /// # Errors
    ///
    /// [`ServiceError::DeadlineUnmeetable`] under an impossible deadline;
    /// otherwise the wrapped [`SolveError`] surface.
    pub fn solve(
        &mut self,
        circuit: &Circuit,
        ticket: JobTicket,
    ) -> Result<Solution, ServiceError> {
        if let Some(deadline) = ticket.deadline {
            if deadline.is_zero() {
                self.monitor.counters.rejected_deadline += 1;
                return Err(ServiceError::DeadlineUnmeetable {
                    deadline,
                    detail: "deadline is zero".to_string(),
                });
            }
        }
        let (key, pattern) = StructureKey::with_matrix(circuit);
        let seq = self.next_id;
        self.next_id += 1;
        self.monitor.counters.submitted[priority_index(ticket.priority)] += 1;
        if let Some(rec) = &self.recorder {
            rec.annotate(Some(seq), circuit.title(), Some(key.hash));
        }
        let sink = self.engine.telemetry();
        let tele = Tele::root(&*sink, Span::default());
        let seed = self.cache.lookup(&key, &pattern, circuit, &tele);
        tele.emit(Payload::JobAdmitted {
            job: seq,
            key: key.hash,
        });
        let job = QueuedJob {
            seq,
            circuit: circuit.clone(),
            ticket,
            submitted: Instant::now(),
            key,
            pattern,
            watchdog_flagged: false,
        };
        let mut group = run_group(
            &self.engine,
            self.policy.as_ref(),
            self.warm_starts,
            vec![job],
            seed,
            self.monitor.watchdog_factor,
        );
        self.monitor.counters.watchdog_fires += group.watchdog_fires;
        self.monitor.counters.deadline_misses += group.deadline_misses;
        if let Some(symbolic) = group.symbolic {
            self.cache.insert(
                key,
                Arc::new(symbolic),
                group.plan,
                if self.warm_starts { group.warm } else { None },
                &tele,
            );
        }
        let result = match group.results.pop() {
            Some((_, result)) => result,
            None => Err(ServiceError::Solve(SolveError::WorkerPanic {
                detail: "service group produced no result".to_string(),
            })),
        };
        self.monitor.counters.note_result(&result);
        self.tick();
        result
    }
}

/// What one structure group hands back to the drain loop.
struct GroupOutcome {
    results: Vec<(JobId, Result<Solution, ServiceError>)>,
    /// The workspace's recorded plan after the chain — refreshes the cache.
    symbolic: Option<SymbolicLu>,
    /// The assembly workspace's resolved stamp plan after the chain —
    /// cached beside the symbolic analysis under the same key.
    plan: Option<Arc<StampPlan>>,
    /// Last certified operating point of the chain.
    warm: Option<Vec<f64>>,
    /// In-flight watchdog flags raised inside the group (for the monitor's
    /// counters — the events themselves already went to the sink).
    watchdog_fires: u64,
    /// Jobs that finished (either way) past their deadline.
    deadline_misses: u64,
}

/// Runs one structure group: a warm-start chain over jobs sharing a
/// [`StructureKey`], all replaying one [`LuWorkspace`]. Never panics on
/// solver failures — every error comes back as a value in its job's slot,
/// and every failed slot is marked with exactly one
/// [`Payload::SolveFailed`] on the job's span (the flight-recorder
/// trigger).
fn run_group(
    engine: &DcEngine,
    policy: Option<&Arc<RlStepping>>,
    warm_starts: bool,
    jobs: Vec<QueuedJob>,
    seed: Option<CacheSeed>,
    watchdog_factor: Option<f64>,
) -> GroupOutcome {
    let mut ws = match &seed {
        Some(seed) => LuWorkspace::with_symbolic((*seed.symbolic).clone()),
        None => LuWorkspace::new(),
    };
    // A cache-shared stamp plan makes the whole chain a pure write pass:
    // the first Newton run skips stamp resolution.
    let mut asm = match seed.as_ref().and_then(|s| s.plan.clone()) {
        Some(plan) => AssemblyWorkspace::with_plan(plan),
        None => AssemblyWorkspace::new(),
    };
    let mut warm: Option<Vec<f64>> = match (&seed, warm_starts) {
        (Some(seed), true) => seed.warm.clone(),
        _ => None,
    };
    let sink = engine.telemetry();
    let mut watchdog_fires = 0u64;
    let mut deadline_misses = 0u64;
    let mut results = Vec::with_capacity(jobs.len());
    for job in jobs {
        let span = Span::for_job(job.seq);
        if let Some(deadline) = job.ticket.deadline {
            if job.submitted.elapsed() > deadline {
                let err = ServiceError::DeadlineUnmeetable {
                    deadline,
                    detail: "deadline expired while the job was queued".to_string(),
                };
                deadline_misses += 1;
                // A queued job that silently aged out is exactly what the
                // watchdog exists to flag; the submit-time check already
                // proved the deadline was meetable, so expiry here means
                // the service sat on it too long.
                if let Some(factor) = watchdog_factor {
                    if !job.watchdog_flagged {
                        watchdog_fires += 1;
                        Tele::root(&*sink, span).emit(Payload::Watchdog {
                            job: job.seq,
                            elapsed_nanos: job.submitted.elapsed().as_nanos() as u64,
                            limit_nanos: deadline.mul_f64(factor).as_nanos() as u64,
                        });
                    }
                }
                Tele::root(&*sink, span).emit(Payload::SolveFailed {
                    error: err.to_string(),
                });
                results.push((job.seq, Err(err)));
                continue;
            }
        }
        let budgeted;
        let eng = match job.ticket.budget {
            Some(b) => {
                budgeted = engine.with_budget(b);
                &budgeted
            }
            None => engine,
        };
        let warm_ref = warm.as_deref().filter(|w| w.len() == job.circuit.dim());
        let solved =
            match eng.solve_warm_with_assembly(&job.circuit, warm_ref, &mut ws, &mut asm, span) {
                Ok(sol) => Ok(sol),
                Err(first) => match policy {
                    // The shared frozen policy gets one RL-steered PTA attempt
                    // before the failure surfaces; it cannot make the outcome
                    // worse (the original error is kept when it also fails).
                    Some(p) if job.circuit.is_nonlinear() => {
                        let tele = Tele::root(&*sink, span);
                        match eng.solve_once_with(&job.circuit, (**p).clone(), &tele) {
                            Ok(sol) => Ok(sol),
                            Err(_) => Err(first),
                        }
                    }
                    _ => Err(first),
                },
            };
        if let Some(deadline) = job.ticket.deadline {
            let elapsed = job.submitted.elapsed();
            if elapsed > deadline {
                deadline_misses += 1;
            }
            if let Some(factor) = watchdog_factor {
                let limit = deadline.mul_f64(factor);
                if elapsed > limit && !job.watchdog_flagged {
                    watchdog_fires += 1;
                    Tele::root(&*sink, span).emit(Payload::Watchdog {
                        job: job.seq,
                        elapsed_nanos: elapsed.as_nanos() as u64,
                        limit_nanos: limit.as_nanos() as u64,
                    });
                }
            }
        }
        match solved {
            Ok(sol) => {
                if warm_starts {
                    warm = Some(sol.x.clone());
                }
                results.push((job.seq, Ok(sol)));
            }
            Err(e) => {
                // The one-per-failure boundary marker: this is the only
                // place a service job's terminal error is emitted, after
                // the RL rescue has had its chance.
                Tele::root(&*sink, span).emit(Payload::SolveFailed {
                    error: e.to_string(),
                });
                results.push((job.seq, Err(ServiceError::Solve(e))));
            }
        }
    }
    GroupOutcome {
        results,
        symbolic: ws.symbolic().cloned(),
        plan: asm.plan().cloned(),
        warm,
        watchdog_fires,
        deadline_misses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{Collector, MetricsRegistry};

    fn divider(r2: &str) -> Circuit {
        rlpta_netlist::parse(&format!("div\nV1 in 0 5\nR1 in out 1k\nR2 out 0 {r2}\n"))
            .expect("parse")
    }

    fn clamp(level: &str) -> Circuit {
        rlpta_netlist::parse(&format!(
            "clamp\nV1 in 0 {level}\nR1 in out 1k\nD1 out 0 DX\n.model DX D(IS=1e-14)\n"
        ))
        .expect("parse")
    }

    #[test]
    fn key_ignores_parameter_values_but_not_structure() {
        let a = StructureKey::of(&divider("1k"));
        let b = StructureKey::of(&divider("47k"));
        assert_eq!(a, b, "parameter delta must not change the key");
        let c = StructureKey::of(&clamp("5"));
        assert_ne!(a, c, "different topology must change the key");
        assert_ne!(
            StructureKey::of(&divider("1k")).hash(),
            0,
            "hash must be populated"
        );
    }

    #[test]
    fn cached_plan_replay_is_bit_identical_to_cold() {
        // Warm-start vectors change the Newton iterate (a different x0
        // converges to a different point in the last-ulp sense), so the
        // bit-identity contract is pinned with them disabled: the cached
        // *symbolic plan* replays the exact float ops of a cold analysis.
        let mut service = SimService::builder(DcEngine::builder().build())
            .warm_starts(false)
            .build();
        let cold = service.solve(&clamp("5"), JobTicket::default()).expect("cold");
        let replay = service.solve(&clamp("5"), JobTicket::default()).expect("replay");
        let stats = service.cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.invalidations, 0);
        assert_eq!(cold.x, replay.x);
    }

    #[test]
    fn plan_counters_track_stamp_resolution_reuse() {
        let mut service = SimService::builder(DcEngine::builder().build())
            .warm_starts(false)
            .build();
        // Cold structure: the group resolves its own plan (a plan miss)…
        service.solve(&clamp("5"), JobTicket::default()).expect("cold");
        let stats = service.cache_stats();
        assert_eq!(stats.plan_misses, 1);
        assert_eq!(stats.plan_hits, 0);
        // …and caches it, so repeats (even with different parameter values)
        // skip resolution entirely.
        service.solve(&clamp("3"), JobTicket::default()).expect("warm");
        service.solve(&clamp("7"), JobTicket::default()).expect("warm");
        let stats = service.cache_stats();
        assert_eq!(stats.plan_hits, 2);
        assert_eq!(stats.plan_misses, 1);
    }

    #[test]
    fn warm_started_repeat_certifies_and_stays_close() {
        let mut service = SimService::builder(DcEngine::builder().build()).build();
        let cold = service.solve(&clamp("5"), JobTicket::default()).expect("cold");
        let warm = service.solve(&clamp("5"), JobTicket::default()).expect("warm");
        assert_eq!(service.cache_stats().hits, 1);
        assert!(warm.stats.converged);
        let health = warm.health.as_ref().expect("graded");
        assert!(health.grade != crate::certify::HealthGrade::Rejected);
        for (a, b) in cold.x.iter().zip(&warm.x) {
            assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn drain_groups_by_structure_and_returns_submission_order() {
        let collector = Arc::new(Collector::new());
        let engine = DcEngine::builder()
            .threads(2)
            .telemetry(collector.clone())
            .build();
        let mut service = SimService::builder(engine).build();
        let ids: Vec<JobId> = [clamp("5"), divider("1k"), clamp("3"), divider("2k")]
            .into_iter()
            .map(|c| service.submit(c, JobTicket::default()).expect("admit"))
            .collect();
        let results = service.drain();
        assert_eq!(
            results.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            ids,
            "results come back in submission order"
        );
        for (id, r) in &results {
            assert!(r.is_ok(), "job {id}: {r:?}");
        }
        // Two structures → two misses, and the two repeats rode their
        // group's seed/workspace (no further lookups), so no hits yet…
        let stats = service.cache_stats();
        assert_eq!(stats.misses, 2);
        // …until the next drain, which hits both.
        for c in [clamp("4"), divider("3k")] {
            service.submit(c, JobTicket::default()).expect("admit");
        }
        let results = service.drain();
        assert!(results.iter().all(|(_, r)| r.is_ok()));
        assert_eq!(service.cache_stats().hits, 2);
        let queued = collector
            .events()
            .iter()
            .filter(|e| matches!(e.payload, Payload::JobQueued { .. }))
            .count();
        assert_eq!(queued, 6);
    }

    #[test]
    fn drain_is_thread_invariant() {
        let solve_all = |threads: usize| {
            let engine = DcEngine::builder().threads(threads).build();
            let mut service = SimService::builder(engine).build();
            for c in [clamp("5"), divider("1k"), clamp("2"), clamp("7"), divider("9k")] {
                service.submit(c, JobTicket::default()).expect("admit");
            }
            service
                .drain()
                .into_iter()
                .map(|(id, r)| (id, r.expect("solves").x))
                .collect::<Vec<_>>()
        };
        let serial = solve_all(1);
        for threads in [2, 4] {
            assert_eq!(serial, solve_all(threads), "threads={threads}");
        }
    }

    #[test]
    fn queue_full_applies_backpressure() {
        let mut service = SimService::builder(DcEngine::builder().build())
            .queue_capacity(2)
            .build();
        service.submit(divider("1k"), JobTicket::default()).expect("1");
        service.submit(divider("2k"), JobTicket::default()).expect("2");
        let err = service
            .submit(divider("3k"), JobTicket::default())
            .expect_err("full");
        assert_eq!(err, ServiceError::QueueFull { capacity: 2 });
        assert!(err.to_string().contains("queue_capacity"), "{err}");
        // Draining frees the queue.
        assert_eq!(service.drain().len(), 2);
        service.submit(divider("3k"), JobTicket::default()).expect("free again");
    }

    #[test]
    fn impossible_deadlines_are_refused_at_admission() {
        let mut service = SimService::builder(DcEngine::builder().build()).build();
        let zero = service
            .submit(
                divider("1k"),
                JobTicket::default().with_deadline(Duration::ZERO),
            )
            .expect_err("zero deadline");
        assert!(matches!(zero, ServiceError::DeadlineUnmeetable { .. }));
        let budget = SolveBudget {
            wall_clock: Some(Duration::from_secs(60)),
            ..SolveBudget::UNLIMITED
        };
        let tight = service
            .submit(
                divider("1k"),
                JobTicket::default()
                    .with_deadline(Duration::from_millis(1))
                    .with_budget(budget),
            )
            .expect_err("budget exceeds deadline");
        match &tight {
            ServiceError::DeadlineUnmeetable { detail, .. } => {
                assert!(detail.contains("budget"), "{detail}");
            }
            other => panic!("wrong error: {other:?}"),
        }
        assert_eq!(service.queue_depth(), 0);
    }

    #[test]
    fn priorities_run_first_but_results_stay_in_submission_order() {
        let mut service = SimService::builder(DcEngine::builder().build()).build();
        let low = service
            .submit(clamp("5"), JobTicket::default().with_priority(Priority::Low))
            .expect("low");
        let critical = service
            .submit(
                clamp("5"),
                JobTicket::default().with_priority(Priority::Critical),
            )
            .expect("critical");
        let results = service.drain();
        assert_eq!(results[0].0, low);
        assert_eq!(results[1].0, critical);
        assert!(results.iter().all(|(_, r)| r.is_ok()));
    }

    #[test]
    fn byte_budget_evicts_lru_structure() {
        let engine = DcEngine::builder().build();
        // A budget big enough for roughly one small entry per shard, with
        // one shard so the LRU order is observable.
        let mut service = SimService::builder(engine)
            .cache_shards(1)
            .cache_bytes(1)
            .build();
        service.solve(&divider("1k"), JobTicket::default()).expect("a");
        service.solve(&clamp("5"), JobTicket::default()).expect("b");
        let stats = service.cache_stats();
        assert!(stats.evictions >= 1, "expected evictions, got {stats:?}");
        assert_eq!(service.cached_structures(), 1, "budget holds one entry");
    }

    #[test]
    fn cache_events_reach_the_metrics_registry() {
        let registry = Arc::new(MetricsRegistry::new());
        let engine = DcEngine::builder().telemetry(registry.clone()).build();
        let mut service = SimService::builder(engine).build();
        service.solve(&clamp("5"), JobTicket::default()).expect("cold");
        service.solve(&clamp("5"), JobTicket::default()).expect("warm");
        assert_eq!(registry.kind_count("CacheMiss"), 1);
        assert_eq!(registry.kind_count("CacheHit"), 1);
        assert_eq!(registry.kind_count("JobAdmitted"), 2);
    }

    #[test]
    fn service_error_family_converts_and_chains() {
        let inner = SolveError::CertificationFailed { residual_norm: 1.0 };
        let err: ServiceError = inner.clone().into();
        assert_eq!(err, ServiceError::Solve(inner));
        assert!(Error::source(&err).is_some());
        assert!(err.to_string().contains("solve failed"), "{err}");
        let dl = ServiceError::DeadlineUnmeetable {
            deadline: Duration::from_secs(1),
            detail: "expired".to_string(),
        };
        assert!(Error::source(&dl).is_none());
        assert!(dl.to_string().contains("cannot be met"), "{dl}");
    }

    #[test]
    fn hit_rate_is_zero_not_nan_before_first_lookup() {
        // Regression: an empty CacheStats must report 0.0, never NaN —
        // NaN here would leak into exposition output and perfdiff JSON.
        let stats = CacheStats::default();
        assert_eq!(stats.hit_rate(), 0.0);
        assert!(stats.hit_rate().is_finite());
        let service = SimService::builder(DcEngine::builder().build()).build();
        assert_eq!(service.cache_stats().hit_rate(), 0.0);
        let text = service.render_prometheus();
        assert!(
            text.contains("rlpta_service_cache_hit_rate 0\n"),
            "{text}"
        );
        assert!(!text.contains("NaN"), "{text}");
    }

    #[test]
    fn recorder_freezes_one_incident_per_failure_and_none_for_success() {
        // Warm starts off: a warm-started repeat would converge in one
        // iteration and dodge the starved budget below.
        let mut service = SimService::builder(DcEngine::builder().build())
            .recorder(16)
            .warm_starts(false)
            .build();
        // Certified solves leave no incidents…
        service.solve(&clamp("5"), JobTicket::default()).expect("ok");
        let rec = Arc::clone(service.recorder().expect("attached"));
        assert_eq!(rec.incident_count(), 0);
        // …while a starved solve leaves exactly one, annotated with the
        // label and structure key attached at admission.
        let starved = SolveBudget {
            max_nr_iterations: Some(1),
            ..SolveBudget::UNLIMITED
        };
        service
            .solve(&clamp("5"), JobTicket::default().with_budget(starved))
            .expect_err("starved");
        assert_eq!(rec.incident_count(), 1);
        let incidents = rec.incidents();
        let inc = &incidents[0];
        assert_eq!(inc.trigger, crate::telemetry::Trigger::SolveFailed);
        assert_eq!(inc.label.as_deref(), Some("clamp"));
        assert!(inc.structure_key.is_some());
        let snap = service.snapshot();
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.solve_failures, 1);
        assert_eq!(snap.incidents, 1);
        assert_eq!(snap.grades[0] + snap.grades[1], 1, "one graded success");
    }

    #[test]
    fn watchdog_flags_overdue_queued_jobs_once() {
        let collector = Arc::new(Collector::new());
        let engine = DcEngine::builder().telemetry(collector.clone()).build();
        let mut service = SimService::builder(engine)
            .recorder(8)
            .watchdog(1.0)
            .build();
        service
            .submit(
                divider("1k"),
                JobTicket::default().with_deadline(Duration::from_millis(2)),
            )
            .expect("admit");
        std::thread::sleep(Duration::from_millis(10));
        service.tick();
        service.tick(); // a queued job fires at most once
        assert_eq!(service.snapshot().watchdog_fires, 1);
        let fires = collector
            .events()
            .iter()
            .filter(|e| matches!(e.payload, Payload::Watchdog { .. }))
            .count();
        assert_eq!(fires, 1);
        // The watchdog event is itself a recorder trigger…
        let rec = Arc::clone(service.recorder().expect("attached"));
        assert_eq!(rec.incidents()[0].trigger, crate::telemetry::Trigger::Watchdog);
        // …and the eventual drain surfaces the expiry as a failed job
        // without re-firing the watchdog.
        let results = service.drain();
        assert!(matches!(
            results[0].1,
            Err(ServiceError::DeadlineUnmeetable { .. })
        ));
        let snap = service.snapshot();
        assert_eq!(snap.watchdog_fires, 1);
        assert!(snap.deadline_misses >= 1);
        assert_eq!(snap.solve_failures, 1);
    }

    #[test]
    fn heartbeat_appends_parseable_lines() {
        let path = std::env::temp_dir().join(format!(
            "rlpta-heartbeat-test-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let mut service = SimService::builder(DcEngine::builder().build())
            .heartbeat(Duration::ZERO)
            .heartbeat_path(path.clone())
            .build();
        service.solve(&divider("1k"), JobTicket::default()).expect("a");
        service.solve(&divider("2k"), JobTicket::default()).expect("b");
        let text = std::fs::read_to_string(&path).expect("heartbeat file");
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 2, "expected two beats, got: {text}");
        let last = HeartbeatLine::parse(lines.last().expect("line")).expect("parse");
        assert_eq!(last.completed, 2);
        assert_eq!(last.cache_hits, 1);
        assert!(service.monitor().write_error().is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn metrics_registry_feeds_snapshot_phases_and_incidents() {
        let registry = Arc::new(MetricsRegistry::new());
        let mut service = SimService::builder(DcEngine::builder().build())
            .metrics(registry.clone())
            .recorder(8)
            .warm_starts(false)
            .build();
        service.solve(&clamp("5"), JobTicket::default()).expect("ok");
        let snap = service.snapshot();
        assert!(
            !snap.phases.is_empty(),
            "attached registry must surface phase summaries"
        );
        // The registry also reaches the recorder: incidents carry its
        // histogram snapshot.
        let starved = SolveBudget {
            max_nr_iterations: Some(1),
            ..SolveBudget::UNLIMITED
        };
        service
            .solve(&clamp("5"), JobTicket::default().with_budget(starved))
            .expect_err("starved");
        let rec = service.recorder().expect("attached");
        assert!(!rec.incidents()[0].histograms.is_empty());
    }

    #[test]
    fn frozen_policy_is_shared_not_retrained() {
        let mut policy = RlStepping::new(RlSteppingConfig::new(7));
        policy.freeze();
        let engine = DcEngine::builder().build();
        let mut service = SimService::builder(engine)
            .policy(Arc::new(policy))
            .build();
        // A healthy circuit never needs the policy, but the handle must
        // not break the normal path.
        let sol = service.solve(&clamp("5"), JobTicket::default()).expect("solve");
        assert!(sol.stats.converged);
    }
}
