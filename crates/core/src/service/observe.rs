//! Live service observability: snapshots, Prometheus exposition,
//! heartbeat stream and the deadline watchdog.
//!
//! [`SimService`] accumulates plain counters as it admits, rejects and
//! completes jobs; [`SimService::snapshot`] freezes them — together with
//! the live queue shape, [`CacheStats`](super::CacheStats), flight-recorder
//! totals and (when a [`MetricsRegistry`] is attached) per-phase latency
//! percentiles — into a [`ServiceSnapshot`]. The snapshot renders two ways:
//!
//! * [`ServiceSnapshot::render_prometheus`]: a Prometheus text exposition
//!   with stable metric names (`rlpta_service_*`), `# HELP`/`# TYPE`
//!   preambles and escaped label values. Scrape it from whatever HTTP
//!   layer embeds the service — the service itself stays transport-free.
//! * [`HeartbeatLine`]: one flat JSON object per beat, appended to a JSONL
//!   file at the interval configured via
//!   [`heartbeat`](super::SimServiceBuilder::heartbeat). `rlpta monitor`
//!   tails that file into an ASCII live view; the line format round-trips
//!   through [`HeartbeatLine::parse`].
//!
//! The **watchdog** ([`watchdog`](super::SimServiceBuilder::watchdog))
//! flags any job whose wall-clock age exceeds `deadline × factor` — both
//! jobs still sitting in the queue (checked on every
//! [`tick`](SimService::tick)) and jobs that overran inside a drain
//! (checked as each group completes). A fire emits
//! [`Payload::Watchdog`], which is itself a flight-recorder trigger, so a
//! wedged job leaves an incident report even if it never returns. The
//! watchdog is off by default: it reads the wall clock, and the service's
//! determinism contract only covers configurations that do not.

use super::{Priority, SimService};
use crate::telemetry::metrics::HistogramSummary;
use crate::telemetry::timing::Phase;
use crate::telemetry::{parse_object, push_f64, MetricsRegistry, Payload, Span, Tele};
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Index of a [`Priority`] into the fixed per-priority counter arrays.
pub(super) fn priority_index(p: Priority) -> usize {
    match p {
        Priority::Low => 0,
        Priority::Normal => 1,
        Priority::High => 2,
        Priority::Critical => 3,
    }
}

/// The four priorities in counter-array order (lowest first).
const PRIORITIES: [Priority; 4] = [
    Priority::Low,
    Priority::Normal,
    Priority::High,
    Priority::Critical,
];

/// Health-grade names in counter-array order.
const GRADES: [&str; 3] = ["certified", "suspect", "rejected"];

/// Cumulative service counters, updated inline by submit/drain/solve.
/// Plain fields behind the service's `&mut self` methods — no atomics
/// needed, and snapshots are trivially consistent.
#[derive(Debug, Default, Clone, Copy)]
pub(super) struct ServiceCounters {
    /// Admitted jobs, by [`Priority`].
    pub(super) submitted: [u64; 4],
    /// Submissions refused with [`QueueFull`](super::ServiceError::QueueFull).
    pub(super) rejected_queue_full: u64,
    /// Submissions refused with
    /// [`DeadlineUnmeetable`](super::ServiceError::DeadlineUnmeetable).
    pub(super) rejected_deadline: u64,
    /// Jobs that came back `Ok`.
    pub(super) completed: u64,
    /// Jobs that came back `Err` (solve failures, expired deadlines).
    pub(super) solve_failures: u64,
    /// Jobs that finished — successfully or not — after their deadline.
    pub(super) deadline_misses: u64,
    /// Watchdog flags raised (queued and in-flight overruns).
    pub(super) watchdog_fires: u64,
    /// Certified / suspect / rejected grades over completed jobs.
    pub(super) grades: [u64; 3],
}

impl ServiceCounters {
    /// Tallies one finished job: completion vs failure, plus the
    /// certification grade when present.
    pub(super) fn note_result(
        &mut self,
        result: &Result<crate::Solution, super::ServiceError>,
    ) {
        match result {
            Ok(sol) => {
                self.completed += 1;
                if let Some(h) = &sol.health {
                    let idx = match h.grade {
                        crate::certify::HealthGrade::Certified => 0,
                        crate::certify::HealthGrade::Suspect => 1,
                        crate::certify::HealthGrade::Rejected => 2,
                    };
                    self.grades[idx] += 1;
                }
            }
            Err(_) => self.solve_failures += 1,
        }
    }
}

/// Monitor state owned by the service: counters, heartbeat schedule and
/// watchdog configuration. Constructed by
/// [`SimServiceBuilder::build`](super::SimServiceBuilder::build); inspect
/// via [`SimService::monitor`].
#[derive(Debug)]
pub struct ServiceMonitor {
    pub(super) counters: ServiceCounters,
    pub(super) started: Instant,
    pub(super) heartbeat_interval: Option<Duration>,
    pub(super) heartbeat_path: Option<PathBuf>,
    pub(super) last_beat: Option<Instant>,
    pub(super) watchdog_factor: Option<f64>,
    pub(super) registry: Option<Arc<MetricsRegistry>>,
    pub(super) write_error: Option<String>,
}

impl ServiceMonitor {
    pub(super) fn new(
        heartbeat_interval: Option<Duration>,
        heartbeat_path: Option<PathBuf>,
        watchdog_factor: Option<f64>,
        registry: Option<Arc<MetricsRegistry>>,
    ) -> Self {
        Self {
            counters: ServiceCounters::default(),
            started: Instant::now(),
            heartbeat_interval,
            heartbeat_path,
            last_beat: None,
            watchdog_factor,
            registry,
            write_error: None,
        }
    }

    /// The configured heartbeat interval, if any.
    pub fn heartbeat_interval(&self) -> Option<Duration> {
        self.heartbeat_interval
    }

    /// The JSONL file heartbeats append to, if any.
    pub fn heartbeat_path(&self) -> Option<&PathBuf> {
        self.heartbeat_path.as_ref()
    }

    /// The watchdog's `deadline × factor` multiplier, if enabled.
    pub fn watchdog_factor(&self) -> Option<f64> {
        self.watchdog_factor
    }

    /// First heartbeat I/O error, if any (heartbeats never fail a solve).
    pub fn write_error(&self) -> Option<&str> {
        self.write_error.as_deref()
    }
}

/// A point-in-time view of a running [`SimService`]; see the
/// [module docs](self). Obtain via [`SimService::snapshot`].
#[derive(Debug, Clone, Default, PartialEq)]
#[non_exhaustive]
pub struct ServiceSnapshot {
    /// Time since the service was built.
    pub uptime: Duration,
    /// Jobs currently queued.
    pub queue_depth: usize,
    /// Queued jobs by priority (low, normal, high, critical).
    pub queue_by_priority: [usize; 4],
    /// Age of the oldest queued job, if any.
    pub oldest_queued: Option<Duration>,
    /// Cumulative admissions by priority (low, normal, high, critical).
    pub submitted: [u64; 4],
    /// Cumulative queue-full rejections.
    pub rejected_queue_full: u64,
    /// Cumulative unmeetable-deadline rejections.
    pub rejected_deadline: u64,
    /// Jobs completed successfully.
    pub completed: u64,
    /// Jobs that came back as errors.
    pub solve_failures: u64,
    /// Jobs that finished after their deadline.
    pub deadline_misses: u64,
    /// Watchdog flags raised.
    pub watchdog_fires: u64,
    /// Certified / suspect / rejected grade counts.
    pub grades: [u64; 3],
    /// Plan-cache counters at snapshot time.
    pub cache: super::CacheStats,
    /// Structures currently cached.
    pub cached_structures: usize,
    /// Incident reports frozen by the attached flight recorder (0 when
    /// none is attached).
    pub incidents: u64,
    /// Incident triggers suppressed by the recorder's per-run cap.
    pub dropped_incidents: u64,
    /// Per-phase latency summaries from the attached registry (empty when
    /// none is attached).
    pub phases: Vec<(Phase, HistogramSummary)>,
}

/// Escapes a Prometheus label value: backslash, double quote and newline
/// per the text exposition format.
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn nanos_to_secs(nanos: u64) -> f64 {
    nanos as f64 * 1e-9
}

/// Writes one `# HELP` + `# TYPE` preamble.
fn preamble(out: &mut String, name: &str, help: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

impl ServiceSnapshot {
    /// Renders the snapshot in the Prometheus text exposition format.
    /// Metric names are a stable scrape contract (`rlpta_service_*`,
    /// golden-tested): fixed order, `# HELP`/`# TYPE` preambles, label
    /// values escaped via [`escape_label`]. Gauges describe "now"; the
    /// `_total` counters are cumulative since service construction.
    pub fn render_prometheus(&self) -> String {
        let mut s = String::with_capacity(4096);
        preamble(
            &mut s,
            "rlpta_service_uptime_seconds",
            "Seconds since the service was built.",
            "gauge",
        );
        let _ = writeln!(
            s,
            "rlpta_service_uptime_seconds {}",
            self.uptime.as_secs_f64()
        );
        preamble(
            &mut s,
            "rlpta_service_queue_depth",
            "Jobs currently queued, by priority.",
            "gauge",
        );
        for (i, p) in PRIORITIES.iter().enumerate() {
            let _ = writeln!(
                s,
                "rlpta_service_queue_depth{{priority=\"{}\"}} {}",
                escape_label(p.as_str()),
                self.queue_by_priority[i]
            );
        }
        preamble(
            &mut s,
            "rlpta_service_queue_oldest_seconds",
            "Age of the oldest queued job (0 when the queue is empty).",
            "gauge",
        );
        let _ = writeln!(
            s,
            "rlpta_service_queue_oldest_seconds {}",
            self.oldest_queued.unwrap_or(Duration::ZERO).as_secs_f64()
        );
        preamble(
            &mut s,
            "rlpta_service_jobs_submitted_total",
            "Admitted jobs, by priority.",
            "counter",
        );
        for (i, p) in PRIORITIES.iter().enumerate() {
            let _ = writeln!(
                s,
                "rlpta_service_jobs_submitted_total{{priority=\"{}\"}} {}",
                escape_label(p.as_str()),
                self.submitted[i]
            );
        }
        preamble(
            &mut s,
            "rlpta_service_jobs_rejected_total",
            "Submissions refused at admission, by reason.",
            "counter",
        );
        let _ = writeln!(
            s,
            "rlpta_service_jobs_rejected_total{{reason=\"queue_full\"}} {}",
            self.rejected_queue_full
        );
        let _ = writeln!(
            s,
            "rlpta_service_jobs_rejected_total{{reason=\"deadline_unmeetable\"}} {}",
            self.rejected_deadline
        );
        preamble(
            &mut s,
            "rlpta_service_jobs_completed_total",
            "Jobs that returned a solution.",
            "counter",
        );
        let _ = writeln!(s, "rlpta_service_jobs_completed_total {}", self.completed);
        preamble(
            &mut s,
            "rlpta_service_solve_failures_total",
            "Jobs that returned an error.",
            "counter",
        );
        let _ = writeln!(
            s,
            "rlpta_service_solve_failures_total {}",
            self.solve_failures
        );
        preamble(
            &mut s,
            "rlpta_service_deadline_misses_total",
            "Jobs that finished after their deadline.",
            "counter",
        );
        let _ = writeln!(
            s,
            "rlpta_service_deadline_misses_total {}",
            self.deadline_misses
        );
        preamble(
            &mut s,
            "rlpta_service_watchdog_fires_total",
            "Jobs flagged past deadline x factor.",
            "counter",
        );
        let _ = writeln!(
            s,
            "rlpta_service_watchdog_fires_total {}",
            self.watchdog_fires
        );
        preamble(
            &mut s,
            "rlpta_service_health_grades_total",
            "Certification grades over completed jobs.",
            "counter",
        );
        for (i, g) in GRADES.iter().enumerate() {
            let _ = writeln!(
                s,
                "rlpta_service_health_grades_total{{grade=\"{}\"}} {}",
                escape_label(g),
                self.grades[i]
            );
        }
        preamble(
            &mut s,
            "rlpta_service_cache_lookups_total",
            "Plan-cache lookups, by result.",
            "counter",
        );
        for (label, value) in [
            ("hit", self.cache.hits),
            ("miss", self.cache.misses),
            ("invalidated", self.cache.invalidations),
        ] {
            let _ = writeln!(
                s,
                "rlpta_service_cache_lookups_total{{result=\"{label}\"}} {value}"
            );
        }
        preamble(
            &mut s,
            "rlpta_service_cache_evictions_total",
            "Cache entries dropped under the byte budget.",
            "counter",
        );
        let _ = writeln!(
            s,
            "rlpta_service_cache_evictions_total {}",
            self.cache.evictions
        );
        preamble(
            &mut s,
            "rlpta_service_stamp_plan_lookups_total",
            "Stamp-plan reuse, by result.",
            "counter",
        );
        for (label, value) in [
            ("hit", self.cache.plan_hits),
            ("miss", self.cache.plan_misses),
        ] {
            let _ = writeln!(
                s,
                "rlpta_service_stamp_plan_lookups_total{{result=\"{label}\"}} {value}"
            );
        }
        preamble(
            &mut s,
            "rlpta_service_cache_hit_rate",
            "Hit fraction of all cache lookups (0 before the first).",
            "gauge",
        );
        let _ = writeln!(s, "rlpta_service_cache_hit_rate {}", self.cache.hit_rate());
        preamble(
            &mut s,
            "rlpta_service_cached_structures",
            "Structures currently held by the plan cache.",
            "gauge",
        );
        let _ = writeln!(
            s,
            "rlpta_service_cached_structures {}",
            self.cached_structures
        );
        preamble(
            &mut s,
            "rlpta_service_incidents_total",
            "Incident reports frozen by the flight recorder.",
            "counter",
        );
        let _ = writeln!(s, "rlpta_service_incidents_total {}", self.incidents);
        preamble(
            &mut s,
            "rlpta_service_incidents_dropped_total",
            "Incident triggers suppressed by the per-run cap.",
            "counter",
        );
        let _ = writeln!(
            s,
            "rlpta_service_incidents_dropped_total {}",
            self.dropped_incidents
        );
        preamble(
            &mut s,
            "rlpta_service_phase_seconds",
            "Per-phase wall-time distribution from the metrics registry.",
            "summary",
        );
        for (phase, h) in &self.phases {
            let name = escape_label(phase.name());
            let _ = writeln!(
                s,
                "rlpta_service_phase_seconds{{phase=\"{name}\",quantile=\"0.5\"}} {}",
                nanos_to_secs(h.p50_nanos)
            );
            let _ = writeln!(
                s,
                "rlpta_service_phase_seconds{{phase=\"{name}\",quantile=\"0.99\"}} {}",
                nanos_to_secs(h.p99_nanos)
            );
            let _ = writeln!(
                s,
                "rlpta_service_phase_seconds_sum{{phase=\"{name}\"}} {}",
                nanos_to_secs(h.sum_nanos)
            );
            let _ = writeln!(
                s,
                "rlpta_service_phase_seconds_count{{phase=\"{name}\"}} {}",
                h.count
            );
        }
        s
    }
}

/// One heartbeat: the scalar core of a [`ServiceSnapshot`] as a flat JSON
/// object (one line, parseable by [`HeartbeatLine::parse`] and by the same
/// minimal scalar-object parser the telemetry JSONL uses). Per-phase
/// latency lands as `p50_<phase>` / `p99_<phase>` nanosecond keys.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct HeartbeatLine {
    /// Service uptime, nanoseconds.
    pub uptime_nanos: u64,
    /// Jobs currently queued.
    pub queue_depth: usize,
    /// Queued jobs by priority (low, normal, high, critical).
    pub queue_by_priority: [usize; 4],
    /// Age of the oldest queued job, nanoseconds (0 when empty).
    pub oldest_queued_nanos: u64,
    /// Cumulative admissions by priority.
    pub submitted: [u64; 4],
    /// Cumulative queue-full rejections.
    pub rejected_queue_full: u64,
    /// Cumulative unmeetable-deadline rejections.
    pub rejected_deadline: u64,
    /// Jobs completed successfully.
    pub completed: u64,
    /// Jobs that came back as errors.
    pub solve_failures: u64,
    /// Jobs that finished after their deadline.
    pub deadline_misses: u64,
    /// Watchdog flags raised.
    pub watchdog_fires: u64,
    /// Certified / suspect / rejected counts.
    pub grades: [u64; 3],
    /// Cache hits so far.
    pub cache_hits: u64,
    /// Cache misses so far.
    pub cache_misses: u64,
    /// Cache hit fraction (0 before the first lookup).
    pub hit_rate: f64,
    /// Structures currently cached.
    pub cached_structures: usize,
    /// Incidents frozen so far.
    pub incidents: u64,
    /// Incident triggers suppressed by the cap.
    pub dropped_incidents: u64,
    /// Per-phase `(phase, p50, p99)` nanoseconds, canonical phase order.
    pub phases: Vec<(Phase, u64, u64)>,
}

impl HeartbeatLine {
    /// Projects a snapshot onto the heartbeat's flat scalar shape.
    pub fn from_snapshot(snap: &ServiceSnapshot) -> Self {
        Self {
            uptime_nanos: snap.uptime.as_nanos() as u64,
            queue_depth: snap.queue_depth,
            queue_by_priority: snap.queue_by_priority,
            oldest_queued_nanos: snap
                .oldest_queued
                .map_or(0, |d| d.as_nanos() as u64),
            submitted: snap.submitted,
            rejected_queue_full: snap.rejected_queue_full,
            rejected_deadline: snap.rejected_deadline,
            completed: snap.completed,
            solve_failures: snap.solve_failures,
            deadline_misses: snap.deadline_misses,
            watchdog_fires: snap.watchdog_fires,
            grades: snap.grades,
            cache_hits: snap.cache.hits,
            cache_misses: snap.cache.misses,
            hit_rate: snap.cache.hit_rate(),
            cached_structures: snap.cached_structures,
            incidents: snap.incidents,
            dropped_incidents: snap.dropped_incidents,
            phases: snap
                .phases
                .iter()
                .map(|(p, h)| (*p, h.p50_nanos, h.p99_nanos))
                .collect(),
        }
    }

    /// Serializes the beat as one flat JSON object, no trailing newline.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        let _ = write!(
            s,
            "{{\"uptime_nanos\":{},\"queue_depth\":{}",
            self.uptime_nanos, self.queue_depth
        );
        for (i, p) in PRIORITIES.iter().enumerate() {
            let _ = write!(s, ",\"queue_{}\":{}", p.as_str(), self.queue_by_priority[i]);
        }
        let _ = write!(s, ",\"oldest_queued_nanos\":{}", self.oldest_queued_nanos);
        for (i, p) in PRIORITIES.iter().enumerate() {
            let _ = write!(s, ",\"submitted_{}\":{}", p.as_str(), self.submitted[i]);
        }
        let _ = write!(
            s,
            ",\"rejected_queue_full\":{},\"rejected_deadline\":{},\"completed\":{},\
             \"solve_failures\":{},\"deadline_misses\":{},\"watchdog_fires\":{}",
            self.rejected_queue_full,
            self.rejected_deadline,
            self.completed,
            self.solve_failures,
            self.deadline_misses,
            self.watchdog_fires
        );
        for (i, g) in GRADES.iter().enumerate() {
            let _ = write!(s, ",\"{}\":{}", g, self.grades[i]);
        }
        let _ = write!(
            s,
            ",\"cache_hits\":{},\"cache_misses\":{},\"hit_rate\":",
            self.cache_hits, self.cache_misses
        );
        push_f64(&mut s, self.hit_rate);
        let _ = write!(
            s,
            ",\"cached_structures\":{},\"incidents\":{},\"dropped_incidents\":{}",
            self.cached_structures, self.incidents, self.dropped_incidents
        );
        for (phase, p50, p99) in &self.phases {
            let _ = write!(
                s,
                ",\"p50_{0}\":{1},\"p99_{0}\":{2}",
                phase.name(),
                p50,
                p99
            );
        }
        s.push('}');
        s
    }

    /// Parses one heartbeat line back; the inverse of
    /// [`HeartbeatLine::to_json`].
    ///
    /// # Errors
    ///
    /// A description of the first malformed or missing field.
    pub fn parse(line: &str) -> Result<Self, String> {
        let fields = parse_object(line)?;
        let mut queue_by_priority = [0usize; 4];
        let mut submitted = [0u64; 4];
        for (i, p) in PRIORITIES.iter().enumerate() {
            queue_by_priority[i] = fields.usize_field(&format!("queue_{}", p.as_str()))?;
            submitted[i] = fields.u64_field(&format!("submitted_{}", p.as_str()))?;
        }
        let mut grades = [0u64; 3];
        for (i, g) in GRADES.iter().enumerate() {
            grades[i] = fields.u64_field(g)?;
        }
        let mut phases = Vec::new();
        for phase in Phase::ALL {
            let p50_key = format!("p50_{}", phase.name());
            if fields.get(&p50_key).is_some() {
                phases.push((
                    phase,
                    fields.u64_field(&p50_key)?,
                    fields.u64_field(&format!("p99_{}", phase.name()))?,
                ));
            }
        }
        Ok(Self {
            uptime_nanos: fields.u64_field("uptime_nanos")?,
            queue_depth: fields.usize_field("queue_depth")?,
            queue_by_priority,
            oldest_queued_nanos: fields.u64_field("oldest_queued_nanos")?,
            submitted,
            rejected_queue_full: fields.u64_field("rejected_queue_full")?,
            rejected_deadline: fields.u64_field("rejected_deadline")?,
            completed: fields.u64_field("completed")?,
            solve_failures: fields.u64_field("solve_failures")?,
            deadline_misses: fields.u64_field("deadline_misses")?,
            watchdog_fires: fields.u64_field("watchdog_fires")?,
            grades,
            cache_hits: fields.u64_field("cache_hits")?,
            cache_misses: fields.u64_field("cache_misses")?,
            hit_rate: fields.f64_field("hit_rate")?,
            cached_structures: fields.usize_field("cached_structures")?,
            incidents: fields.u64_field("incidents")?,
            dropped_incidents: fields.u64_field("dropped_incidents")?,
            phases,
        })
    }
}

impl SimService {
    /// The monitor's configuration and accumulated state.
    pub fn monitor(&self) -> &ServiceMonitor {
        &self.monitor
    }

    /// Freezes the service's observable state into a [`ServiceSnapshot`].
    pub fn snapshot(&self) -> ServiceSnapshot {
        let mut queue_by_priority = [0usize; 4];
        let mut oldest: Option<Duration> = None;
        for job in &self.queue {
            queue_by_priority[priority_index(job.ticket.priority)] += 1;
            let age = job.submitted.elapsed();
            if oldest.is_none_or(|o| age > o) {
                oldest = Some(age);
            }
        }
        let c = &self.monitor.counters;
        ServiceSnapshot {
            uptime: self.monitor.started.elapsed(),
            queue_depth: self.queue.len(),
            queue_by_priority,
            oldest_queued: oldest,
            submitted: c.submitted,
            rejected_queue_full: c.rejected_queue_full,
            rejected_deadline: c.rejected_deadline,
            completed: c.completed,
            solve_failures: c.solve_failures,
            deadline_misses: c.deadline_misses,
            watchdog_fires: c.watchdog_fires,
            grades: c.grades,
            cache: self.cache_stats(),
            cached_structures: self.cached_structures(),
            incidents: self
                .recorder
                .as_ref()
                .map_or(0, |r| r.incident_count() as u64),
            dropped_incidents: self
                .recorder
                .as_ref()
                .map_or(0, |r| r.dropped_incidents() as u64),
            phases: self
                .monitor
                .registry
                .as_ref()
                .map(|r| r.summaries())
                .unwrap_or_default(),
        }
    }

    /// [`ServiceSnapshot::render_prometheus`] over a fresh snapshot.
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }

    /// One heartbeat over a fresh snapshot (does not write the stream).
    pub fn heartbeat_line(&self) -> HeartbeatLine {
        HeartbeatLine::from_snapshot(&self.snapshot())
    }

    /// Runs the monitor's periodic duties: scans the queue for watchdog
    /// overruns (each queued job fires at most once) and appends a
    /// heartbeat line when the configured interval has elapsed. Called
    /// automatically after every submit/drain/solve; long-idle embeddings
    /// can call it from their own timer for steady heartbeats.
    pub fn tick(&mut self) {
        if let Some(factor) = self.monitor.watchdog_factor {
            let sink = self.engine.telemetry();
            for job in &mut self.queue {
                if job.watchdog_flagged {
                    continue;
                }
                let Some(deadline) = job.ticket.deadline else {
                    continue;
                };
                let limit = deadline.mul_f64(factor);
                let elapsed = job.submitted.elapsed();
                if elapsed > limit {
                    job.watchdog_flagged = true;
                    self.monitor.counters.watchdog_fires += 1;
                    Tele::root(&*sink, Span::for_job(job.seq)).emit(Payload::Watchdog {
                        job: job.seq,
                        elapsed_nanos: elapsed.as_nanos() as u64,
                        limit_nanos: limit.as_nanos() as u64,
                    });
                }
            }
        }
        let due = match (self.monitor.heartbeat_interval, &self.monitor.heartbeat_path) {
            (Some(interval), Some(_)) => self
                .monitor
                .last_beat
                .is_none_or(|t| t.elapsed() >= interval),
            _ => false,
        };
        if due {
            let line = self.heartbeat_line().to_json();
            if let Some(path) = &self.monitor.heartbeat_path {
                let write = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .and_then(|mut f| writeln!(f, "{line}"));
                if let Err(e) = write {
                    if self.monitor.write_error.is_none() {
                        self.monitor.write_error = Some(format!("{}: {e}", path.display()));
                    }
                }
            }
            self.monitor.last_beat = Some(Instant::now());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> ServiceSnapshot {
        ServiceSnapshot {
            uptime: Duration::from_millis(1500),
            queue_depth: 3,
            queue_by_priority: [1, 2, 0, 0],
            oldest_queued: Some(Duration::from_millis(250)),
            submitted: [4, 10, 2, 1],
            rejected_queue_full: 2,
            rejected_deadline: 1,
            completed: 12,
            solve_failures: 3,
            deadline_misses: 1,
            watchdog_fires: 2,
            grades: [11, 1, 0],
            cache: super::super::CacheStats {
                hits: 9,
                misses: 3,
                evictions: 1,
                invalidations: 0,
                plan_hits: 8,
                plan_misses: 4,
            },
            cached_structures: 2,
            incidents: 3,
            dropped_incidents: 1,
            phases: vec![(
                Phase::LuFactorize,
                HistogramSummary {
                    count: 100,
                    sum_nanos: 2_000_000,
                    min_nanos: 10_000,
                    max_nanos: 50_000,
                    p50_nanos: 20_000,
                    p90_nanos: 40_000,
                    p99_nanos: 48_000,
                },
            )],
        }
    }

    /// The exposition format is a scrape contract: this golden test pins
    /// the exact text for a fully-populated snapshot. A diff here means
    /// dashboards break — change the expectation deliberately or not at
    /// all.
    #[test]
    fn prometheus_exposition_matches_golden() {
        let golden = "\
# HELP rlpta_service_uptime_seconds Seconds since the service was built.
# TYPE rlpta_service_uptime_seconds gauge
rlpta_service_uptime_seconds 1.5
# HELP rlpta_service_queue_depth Jobs currently queued, by priority.
# TYPE rlpta_service_queue_depth gauge
rlpta_service_queue_depth{priority=\"low\"} 1
rlpta_service_queue_depth{priority=\"normal\"} 2
rlpta_service_queue_depth{priority=\"high\"} 0
rlpta_service_queue_depth{priority=\"critical\"} 0
# HELP rlpta_service_queue_oldest_seconds Age of the oldest queued job (0 when the queue is empty).
# TYPE rlpta_service_queue_oldest_seconds gauge
rlpta_service_queue_oldest_seconds 0.25
# HELP rlpta_service_jobs_submitted_total Admitted jobs, by priority.
# TYPE rlpta_service_jobs_submitted_total counter
rlpta_service_jobs_submitted_total{priority=\"low\"} 4
rlpta_service_jobs_submitted_total{priority=\"normal\"} 10
rlpta_service_jobs_submitted_total{priority=\"high\"} 2
rlpta_service_jobs_submitted_total{priority=\"critical\"} 1
# HELP rlpta_service_jobs_rejected_total Submissions refused at admission, by reason.
# TYPE rlpta_service_jobs_rejected_total counter
rlpta_service_jobs_rejected_total{reason=\"queue_full\"} 2
rlpta_service_jobs_rejected_total{reason=\"deadline_unmeetable\"} 1
# HELP rlpta_service_jobs_completed_total Jobs that returned a solution.
# TYPE rlpta_service_jobs_completed_total counter
rlpta_service_jobs_completed_total 12
# HELP rlpta_service_solve_failures_total Jobs that returned an error.
# TYPE rlpta_service_solve_failures_total counter
rlpta_service_solve_failures_total 3
# HELP rlpta_service_deadline_misses_total Jobs that finished after their deadline.
# TYPE rlpta_service_deadline_misses_total counter
rlpta_service_deadline_misses_total 1
# HELP rlpta_service_watchdog_fires_total Jobs flagged past deadline x factor.
# TYPE rlpta_service_watchdog_fires_total counter
rlpta_service_watchdog_fires_total 2
# HELP rlpta_service_health_grades_total Certification grades over completed jobs.
# TYPE rlpta_service_health_grades_total counter
rlpta_service_health_grades_total{grade=\"certified\"} 11
rlpta_service_health_grades_total{grade=\"suspect\"} 1
rlpta_service_health_grades_total{grade=\"rejected\"} 0
# HELP rlpta_service_cache_lookups_total Plan-cache lookups, by result.
# TYPE rlpta_service_cache_lookups_total counter
rlpta_service_cache_lookups_total{result=\"hit\"} 9
rlpta_service_cache_lookups_total{result=\"miss\"} 3
rlpta_service_cache_lookups_total{result=\"invalidated\"} 0
# HELP rlpta_service_cache_evictions_total Cache entries dropped under the byte budget.
# TYPE rlpta_service_cache_evictions_total counter
rlpta_service_cache_evictions_total 1
# HELP rlpta_service_stamp_plan_lookups_total Stamp-plan reuse, by result.
# TYPE rlpta_service_stamp_plan_lookups_total counter
rlpta_service_stamp_plan_lookups_total{result=\"hit\"} 8
rlpta_service_stamp_plan_lookups_total{result=\"miss\"} 4
# HELP rlpta_service_cache_hit_rate Hit fraction of all cache lookups (0 before the first).
# TYPE rlpta_service_cache_hit_rate gauge
rlpta_service_cache_hit_rate 0.75
# HELP rlpta_service_cached_structures Structures currently held by the plan cache.
# TYPE rlpta_service_cached_structures gauge
rlpta_service_cached_structures 2
# HELP rlpta_service_incidents_total Incident reports frozen by the flight recorder.
# TYPE rlpta_service_incidents_total counter
rlpta_service_incidents_total 3
# HELP rlpta_service_incidents_dropped_total Incident triggers suppressed by the per-run cap.
# TYPE rlpta_service_incidents_dropped_total counter
rlpta_service_incidents_dropped_total 1
# HELP rlpta_service_phase_seconds Per-phase wall-time distribution from the metrics registry.
# TYPE rlpta_service_phase_seconds summary
rlpta_service_phase_seconds{phase=\"lu_factorize\",quantile=\"0.5\"} 0.00002
rlpta_service_phase_seconds{phase=\"lu_factorize\",quantile=\"0.99\"} 0.000048
rlpta_service_phase_seconds_sum{phase=\"lu_factorize\"} 0.002
rlpta_service_phase_seconds_count{phase=\"lu_factorize\"} 100
";
        assert_eq!(sample_snapshot().render_prometheus(), golden);
    }

    #[test]
    fn exposition_never_contains_nan() {
        // A fresh snapshot has zero lookups; hit_rate must render as 0,
        // not NaN (the CacheStats guard, pinned at the exposition layer).
        let text = ServiceSnapshot::default().render_prometheus();
        assert!(text.contains("rlpta_service_cache_hit_rate 0\n"), "{text}");
        assert!(!text.contains("NaN"), "{text}");
    }

    #[test]
    fn label_escaping_covers_prometheus_specials() {
        assert_eq!(escape_label("plain"), "plain");
        assert_eq!(escape_label("a\\b"), "a\\\\b");
        assert_eq!(escape_label("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escape_label("two\nlines"), "two\\nlines");
    }

    #[test]
    fn heartbeat_line_round_trips() {
        let line = HeartbeatLine::from_snapshot(&sample_snapshot());
        let parsed = HeartbeatLine::parse(&line.to_json()).expect("parse");
        assert_eq!(parsed, line);
        // And the empty default parses too (no phases, rate 0 not NaN).
        let empty = HeartbeatLine::from_snapshot(&ServiceSnapshot::default());
        assert_eq!(empty.hit_rate, 0.0);
        let parsed = HeartbeatLine::parse(&empty.to_json()).expect("parse");
        assert_eq!(parsed, empty);
    }
}
