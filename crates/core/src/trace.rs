//! Step-trace recording: wraps any controller and logs every observation —
//! the raw material for convergence plots (the trajectories behind the
//! paper's Fig. 3 workflow) and for debugging stepping policies.

use crate::{StepController, StepObservation};

/// One recorded stepping decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEntry {
    /// What the PTA loop observed.
    pub observation: StepObservation,
    /// The step size the inner controller replied with.
    pub next_step: f64,
}

/// A transparent [`StepController`] wrapper that records every
/// observation/decision pair while delegating all policy to the inner
/// controller.
///
/// # Example
///
/// ```
/// use rlpta_core::{PtaConfig, PtaKind, PtaSolver, SimpleStepping, TraceController};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let c = rlpta_netlist::parse(
///     "t\nV1 in 0 5\nR1 in out 1k\nD1 out 0 DX\n.model DX D(IS=1e-14)",
/// )?;
/// let mut solver = PtaSolver::with_config(
///     PtaKind::dpta(),
///     TraceController::new(SimpleStepping::default()),
///     PtaConfig::default(),
/// );
/// let sol = solver.solve(&c)?;
/// let trace = solver.controller_mut().entries();
/// assert_eq!(trace.len(), sol.stats.pta_steps + sol.stats.rejected_steps);
/// assert!(trace.last().expect("nonempty").observation.pta_converged);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TraceController<C> {
    inner: C,
    entries: Vec<TraceEntry>,
}

impl<C: StepController> TraceController<C> {
    /// Wraps `inner`.
    pub fn new(inner: C) -> Self {
        Self {
            inner,
            entries: Vec::new(),
        }
    }

    /// The recorded entries of the most recent run.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Borrows the wrapped controller.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Consumes the wrapper, returning the inner controller and the trace.
    pub fn into_parts(self) -> (C, Vec<TraceEntry>) {
        (self.inner, self.entries)
    }

    /// Renders the trace as CSV (`time,step,next_step,iters,converged,
    /// residual,gamma`). Rejected steps carry no Γ; their gamma cell is
    /// empty.
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("time,step,next_step,nr_iterations,nr_converged,residual,gamma\n");
        for e in &self.entries {
            let o = &e.observation;
            let gamma = o.gamma.map_or(String::new(), |g| format!("{g:e}"));
            out.push_str(&format!(
                "{:e},{:e},{:e},{},{},{:e},{}\n",
                o.time, o.step, e.next_step, o.nr_iterations, o.nr_converged, o.residual, gamma
            ));
        }
        out
    }
}

impl<C: StepController> StepController for TraceController<C> {
    fn initial_step(&mut self) -> f64 {
        self.inner.initial_step()
    }

    fn next_step(&mut self, obs: &StepObservation) -> f64 {
        let next = self.inner.next_step(obs);
        self.entries.push(TraceEntry {
            observation: *obs,
            next_step: next,
        });
        next
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PtaConfig, PtaKind, PtaSolver, SimpleStepping};

    fn traced_run() -> (crate::SolveStats, Vec<TraceEntry>) {
        let c = rlpta_netlist::parse(
            "t\nV1 in 0 5\nR1 in out 1k\nD1 out 0 DX\n.model DX D(IS=1e-14)\n",
        )
        .unwrap();
        let mut solver = PtaSolver::with_config(
            PtaKind::dpta(),
            TraceController::new(SimpleStepping::default()),
            PtaConfig::default(),
        );
        let sol = solver.solve(&c).unwrap();
        let trace = solver.controller_mut().entries().to_vec();
        (sol.stats, trace)
    }

    #[test]
    fn records_every_attempted_step() {
        let (stats, trace) = traced_run();
        assert_eq!(trace.len(), stats.pta_steps + stats.rejected_steps);
    }

    #[test]
    fn time_is_monotone_over_accepted_steps() {
        let (_, trace) = traced_run();
        let mut last = -1.0;
        for e in trace.iter().filter(|e| e.observation.nr_converged) {
            assert!(e.observation.time >= last);
            last = e.observation.time;
        }
    }

    #[test]
    fn final_entry_is_the_convergence() {
        let (_, trace) = traced_run();
        assert!(trace.last().unwrap().observation.pta_converged);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let c = rlpta_netlist::parse("t\nV1 a 0 2\nR1 a b 1k\nD1 b 0 DX\n.model DX D(IS=1e-14)\n")
            .unwrap();
        let mut solver = PtaSolver::with_config(
            PtaKind::dpta(),
            TraceController::new(SimpleStepping::default()),
            PtaConfig::default(),
        );
        solver.solve(&c).unwrap();
        let csv = solver.controller_mut().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].starts_with("time,step"));
        assert!(lines.len() > 2);
    }

    #[test]
    fn reset_clears_the_trace() {
        let mut t = TraceController::new(SimpleStepping::default());
        let h = t.initial_step();
        t.next_step(&StepObservation {
            nr_iterations: 2,
            nr_converged: true,
            residual: 1.0,
            gamma: Some(0.1),
            pta_converged: false,
            step: h,
            time: h,
        });
        assert_eq!(t.entries().len(), 1);
        t.reset();
        assert!(t.entries().is_empty());
    }

    #[test]
    fn delegates_name_and_policy() {
        let t = TraceController::new(SimpleStepping::default());
        assert_eq!(t.name(), "simple");
        let (inner, trace) = t.into_parts();
        assert_eq!(inner.h0, SimpleStepping::default().h0);
        assert!(trace.is_empty());
    }
}
