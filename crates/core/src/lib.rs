//! Newton–Raphson, continuation and pseudo-transient DC solvers with
//! pluggable — including reinforcement-learning — time-step control.
//!
//! This crate is the reproduction of the DAC'22 paper's contribution on top
//! of the `rlpta` substrate crates:
//!
//! * [`NewtonRaphson`] — damped Newton with SPICE convergence criteria, the
//!   inner solver of everything else,
//! * [`GminStepping`] / [`SourceStepping`] — classic continuation baselines,
//! * [`PtaSolver`] — pseudo-transient analysis with four flavours
//!   ([`PtaKind`]): pure PTA, damped **DPTA**, source-ramping **RPTA** and
//!   compound-element **CEPTA**, parameterized by [`PtaParams`] (the `z`
//!   the IPP stage predicts),
//! * [`StepController`] implementations: [`SimpleStepping`]
//!   (iteration-counting IMAX/IMIN), [`SerStepping`] (switched
//!   evolution/relaxation, the paper's "adaptive" baseline) and
//!   [`RlStepping`] — the paper's RL-S: TD3 dual agents with a public
//!   sample buffer and TD-error priority sampling, trained online during
//!   the simulation,
//! * [`IppOracle`] / [`predict_params`] — the glue binding the
//!   Gaussian-process active learner of `rlpta-gp` to real PTA runs,
//! * [`RobustDcSolver`] — the resilience layer: an escalation ladder over
//!   all of the above with uniform [`SolveBudget`] enforcement, non-finite
//!   guards and (behind the `faults` feature) a deterministic
//!   fault-injection harness ([`recovery`]),
//! * [`DcEngine`] — the single public entry point tying it together:
//!   strategy selection via a builder, symbolic-LU reuse across Newton
//!   iterations and batch execution (corpora, sweeps, raced ladders) on a
//!   deterministic thread pool ([`engine`](crate::DcEngine)),
//! * [`telemetry`] — one typed event stream from the LU kernel up to the
//!   RL trainer, consumed through pluggable [`Sink`]s; the classic report
//!   types ([`SolveStats`], [`TraceEntry`], [`AttemptReport`],
//!   [`SweepReport`]) are derived fold/filter views over it.
//!
//! # Example
//!
//! ```
//! use rlpta_core::{DcEngine, PtaKind};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let circuit = rlpta_netlist::parse(
//!     "clamp
//!      V1 in 0 5
//!      R1 in out 1k
//!      D1 out 0 DX
//!      .model DX D(IS=1e-14)",
//! )?;
//! let engine = DcEngine::builder().kind(PtaKind::Pure).build();
//! let solution = engine.solve(&circuit)?;
//! let v = solution.voltage(&circuit, "out").expect("node exists");
//! assert!(v > 0.5 && v < 0.9); // one diode drop
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Panics are unacceptable in the solver hot path: every failure must come
// back as a structured `SolveError`. Test code is exempt.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![cfg_attr(not(test), deny(clippy::panic))]
// All profiling goes through the telemetry timing layer; stray `dbg!`
// prints would corrupt the deterministic streams CI diffs.
#![warn(clippy::dbg_macro)]

mod ac;
mod assembly;
pub mod certify;
pub mod config;
mod continuation;
mod engine;
mod error;
mod homotopy;
mod ipp;
mod newton;
mod pta;
pub mod recovery;
mod report;
mod rl_stepping;
pub mod service;
mod solution;
mod stepping;
mod sweep;
pub mod telemetry;
mod trace;
mod transient;

pub use ac::{AcPoint, AcStimulus, AcSweep};
pub use assembly::AssemblyMode;
pub use certify::{certify, HealthGrade, HealthReport};
pub use config::EngineConfig;
pub use continuation::{GminStepping, SourceStepping};
pub use engine::{DcEngine, DcEngineBuilder, Stepping, Strategy};
pub use error::{SolveError, SolvePhase};
pub use homotopy::NewtonHomotopy;
pub use ipp::{default_pta_params, predict_params, IppOracle};
pub use newton::{NewtonConfig, NewtonRaphson};
pub use pta::{CeptaConfig, DptaConfig, PtaConfig, PtaKind, PtaParams, PtaSolver, RptaConfig};
#[cfg(feature = "faults")]
pub use recovery::FaultPlan;
pub use recovery::{AttemptReport, LadderStage, RobustDcSolver, SolveBudget};
pub use report::op_report;
pub use rl_stepping::{RlStepping, RlSteppingConfig};
pub use service::{
    CacheStats, HeartbeatLine, JobId, JobTicket, Priority, ServiceError, ServiceMonitor,
    ServiceSnapshot, SimService, SimServiceBuilder, StructureKey,
};
pub use solution::{Solution, SolveStats};
pub use stepping::{SerStepping, SimpleStepping, StepController, StepObservation};
pub use sweep::{DcSweep, QuarantinedPoint, SweepPoint, SweepReport};
pub use telemetry::{
    Collector, CounterSink, DerivedRates, Event, FanoutSink, FlightRecorder, Histogram,
    HistogramSummary, IncidentReport, JsonlSink, MetricsRegistry, NullSink, Payload, Phase, Sink,
    Span, Trigger,
};
pub use trace::{TraceController, TraceEntry};
pub use transient::{Stimulus, Transient, TransientPoint, Waveform};

/// The one-true-path import for applications: the engine, the service and
/// the types every caller of either touches (configuration, step-control
/// policies, budgets, reports, the two error families). Deliberately
/// *excludes* the individual solver types (`NewtonRaphson`, `PtaSolver`,
/// …) — those are research-harness surface; applications drive
/// [`DcEngine`] or [`SimService`].
///
/// ```
/// use rlpta_core::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let circuit = rlpta_netlist::parse("t\nV1 a 0 1\nR1 a 0 1k")?;
/// let report = DcEngine::builder().build().solve(&circuit)?;
/// assert!(report.stats.converged);
/// # Ok(())
/// # }
/// ```
pub mod prelude {
    pub use crate::assembly::AssemblyMode;
    pub use crate::certify::{HealthGrade, HealthReport};
    pub use crate::config::EngineConfig;
    pub use crate::engine::{DcEngine, DcEngineBuilder, Stepping, Strategy};
    pub use crate::error::{SolveError, SolvePhase};
    pub use crate::newton::NewtonConfig;
    pub use crate::pta::{PtaConfig, PtaKind};
    pub use crate::recovery::{LadderStage, SolveBudget};
    pub use crate::rl_stepping::RlSteppingConfig;
    pub use crate::stepping::{SerStepping, SimpleStepping};
    pub use crate::service::{
        CacheStats, HeartbeatLine, JobId, JobTicket, Priority, ServiceError, ServiceMonitor,
        ServiceSnapshot, SimService, SimServiceBuilder, StructureKey,
    };
    pub use crate::solution::{Solution, SolveStats};
    pub use crate::sweep::{DcSweep, QuarantinedPoint, SweepPoint, SweepReport};
    pub use crate::telemetry::{FlightRecorder, IncidentReport, MetricsRegistry, Trigger};
}
