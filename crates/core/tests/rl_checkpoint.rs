//! RL-S checkpointing: a trained dual-agent controller persists through
//! `save_policy`/`load_policy`, and a frozen reload replays bit-identical
//! stepping decisions. `TrainStep` telemetry flows only in training
//! configurations (telemetry attached *and* not frozen).

use rlpta_core::{
    Collector, Payload, PtaConfig, PtaKind, PtaSolver, RlStepping, RlSteppingConfig, Span,
    StepController, TraceController,
};
use std::sync::Arc;

fn fixed_circuit() -> rlpta_mna::Circuit {
    rlpta_netlist::parse(
        "fix\nV1 in 0 5\nR1 in out 1k\nD1 out 0 DX\n.model DX D(IS=1e-14)\n",
    )
    .expect("parses")
}

/// Pre-trains a controller across two corpus circuits — enough transitions
/// to pass the warmup gate and run real TD3 updates.
fn trained_controller() -> RlStepping {
    let mut rl = RlStepping::new(RlSteppingConfig::new(7));
    for name in ["gm1", "bias"] {
        let b = rlpta_circuits::by_name(name).expect("known benchmark");
        let mut solver = PtaSolver::with_config(PtaKind::dpta(), rl.clone(), PtaConfig::default());
        let _ = solver.solve(&b.circuit);
        rl = solver.controller_mut().clone();
    }
    rl
}

#[test]
fn reloaded_policy_replays_identical_stepping_decisions() {
    let mut trained = trained_controller();
    assert!(
        trained.transitions_seen() > 8,
        "pre-training must clear the warmup gate ({} transitions)",
        trained.transitions_seen()
    );
    let mut buf = Vec::new();
    trained.save_policy(&mut buf).expect("policy saves");
    let mut reloaded =
        RlStepping::load_policy(RlSteppingConfig::new(7), &mut &buf[..]).expect("policy loads");
    // Frozen: no exploration noise, no training — decisions depend only on
    // the persisted networks.
    trained.freeze();
    reloaded.freeze();
    let c = fixed_circuit();
    let run = |ctl: RlStepping| {
        let mut solver =
            PtaSolver::with_config(PtaKind::dpta(), TraceController::new(ctl), PtaConfig::default());
        solver.solve(&c).expect("solves");
        solver.controller_mut().entries().to_vec()
    };
    let original = run(trained);
    let restored = run(reloaded);
    assert!(!original.is_empty());
    assert_eq!(
        original, restored,
        "a frozen reload must replay the checkpointed policy bit for bit"
    );
}

#[test]
fn train_step_events_flow_only_while_training() {
    let c = fixed_circuit();
    let train_steps = |sink: &Collector| {
        sink.events()
            .iter()
            .filter(|e| matches!(e.payload, Payload::TrainStep { .. }))
            .count()
    };

    // Training configuration: telemetry attached, controller unfrozen.
    let sink = Arc::new(Collector::new());
    let mut rl = trained_controller();
    rl.attach_telemetry(sink.clone(), Span::default());
    let mut solver = PtaSolver::with_config(PtaKind::dpta(), rl.clone(), PtaConfig::default());
    let _ = solver.solve(&c);
    assert!(
        train_steps(&sink) > 0,
        "an unfrozen controller with telemetry must stream TrainStep events"
    );

    // Evaluation configuration: same wiring, frozen — silence.
    let frozen_sink = Arc::new(Collector::new());
    rl.freeze();
    rl.attach_telemetry(frozen_sink.clone(), Span::default());
    let mut solver = PtaSolver::with_config(PtaKind::dpta(), rl, PtaConfig::default());
    let _ = solver.solve(&c);
    assert_eq!(
        train_steps(&frozen_sink),
        0,
        "a frozen controller must not emit TrainStep events"
    );
}
