//! Property-based tests for the solvers: analytic agreement on random
//! linear ladders, Newton/PTA cross-validation, and controller totality.

use proptest::prelude::*;
use rlpta_core::{
    DcEngine, DcSweep, NewtonRaphson, PtaConfig, PtaKind, PtaSolver, RobustDcSolver, SerStepping,
    SimpleStepping, SolveBudget, SolveError, StepController, StepObservation,
};

/// Builds an n-stage resistor ladder deck driven by `v` volts.
fn ladder_deck(n: usize, v: f64, r_kohm: f64) -> String {
    let mut deck = format!("ladder\nV1 n0 0 {v}\n");
    for i in 0..n {
        deck += &format!("R{i} n{i} n{} {r_kohm}k\n", i + 1);
    }
    deck += &format!("RL n{n} 0 {r_kohm}k\n");
    deck
}

proptest! {
    /// On an equal-resistor ladder the node voltages follow the analytic
    /// divider formula.
    #[test]
    fn newton_matches_analytic_ladder(
        n in 1usize..12,
        v in -10.0f64..10.0,
        r_kohm in 0.1f64..100.0,
    ) {
        let c = rlpta_netlist::parse(&ladder_deck(n, v, r_kohm)).expect("parses");
        let sol = NewtonRaphson::default().solve(&c).expect("solves");
        // Chain of n+1 equal resistors to ground: node k sits at
        // v·(n+1−k)/(n+1).
        for k in 0..=n {
            let name = format!("n{k}");
            let got = sol.voltage(&c, &name).expect("node exists");
            let expect = v * (n + 1 - k) as f64 / (n + 1) as f64;
            prop_assert!((got - expect).abs() < 1e-6 * (1.0 + expect.abs()),
                "node {k}: {got} vs {expect}");
        }
    }

    /// PTA lands on the same operating point as Newton for random diode
    /// loads.
    #[test]
    fn pta_agrees_with_newton_on_diode_loads(
        v in 1.0f64..12.0,
        r_ohm in 50.0f64..10_000.0,
    ) {
        let deck = format!(
            "clamp\nV1 in 0 {v}\nR1 in out {r_ohm}\nD1 out 0 DX\n.model DX D(IS=1e-14)\n"
        );
        let c = rlpta_netlist::parse(&deck).expect("parses");
        let newton = NewtonRaphson::default().solve(&c).expect("newton");
        let mut pta = PtaSolver::with_config(
            PtaKind::dpta(),
            SimpleStepping::default(),
            PtaConfig::default(),
        );
        let sol = pta.solve(&c).expect("pta");
        for (a, b) in sol.x.iter().zip(&newton.x) {
            prop_assert!((a - b).abs() < 1e-4 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }

    /// Step controllers always propose positive finite steps, whatever the
    /// observation stream.
    #[test]
    fn controllers_always_propose_valid_steps(
        observations in proptest::collection::vec(
            (0usize..40, any::<bool>(), 1e-12f64..1e3, 1e-9f64..1e3),
            1..60,
        ),
    ) {
        let mut simple = SimpleStepping::default();
        let mut ser = SerStepping::default();
        let mut hs = simple.initial_step();
        let mut ha = ser.initial_step();
        for (iters, conv, res, gamma) in observations {
            let obs = |h: f64| StepObservation {
                nr_iterations: iters,
                nr_converged: conv,
                residual: res,
                gamma: Some(gamma),
                pta_converged: false,
                step: h,
                time: 0.0,
            };
            hs = simple.next_step(&obs(hs));
            ha = ser.next_step(&obs(ha));
            prop_assert!(hs.is_finite() && hs > 0.0, "simple produced {hs}");
            prop_assert!(ha.is_finite() && ha > 0.0, "ser produced {ha}");
        }
    }

    /// Gmin and source stepping agree with Newton on random BJT bias points.
    #[test]
    fn continuation_agrees_on_bjt_bias(
        vcc in 5.0f64..15.0,
        rb_kohm in 20.0f64..200.0,
        rc_kohm in 1.0f64..10.0,
    ) {
        let deck = format!(
            "bias\nV1 vcc 0 {vcc}\nR1 vcc b {rb_kohm}k\nR2 b 0 22k\nRC vcc c {rc_kohm}k\nRE e 0 1k\nQ1 c b e QN\n.model QN NPN(IS=1e-15 BF=100)\n"
        );
        let c = rlpta_netlist::parse(&deck).expect("parses");
        let newton = NewtonRaphson::default().solve(&c).expect("newton");
        let gmin = rlpta_core::GminStepping::default().solve(&c).expect("gmin");
        for (a, b) in gmin.x.iter().zip(&newton.x) {
            prop_assert!((a - b).abs() < 1e-3 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }

    /// A solved operating point always has a small true residual.
    #[test]
    fn solutions_have_small_residuals(v in 1.0f64..10.0, n in 1usize..6) {
        let c = rlpta_netlist::parse(&ladder_deck(n, v, 1.0)).expect("parses");
        let sol = NewtonRaphson::default().solve(&c).expect("solves");
        prop_assert!(sol.residual_norm(&c) < 1e-9 * (1.0 + v.abs()));
    }

    /// Chunked parallel sweeps are **bit-identical** to serial sweeps for
    /// every sweep length, chunk size and thread count: the chunk layout —
    /// not the scheduler — determines the warm-start chain of every point.
    #[test]
    fn parallel_sweep_is_bit_identical_to_serial(
        n_points in 2usize..18,
        chunk in 1usize..9,
        threads in 2usize..6,
        v_stop in 0.5f64..5.0,
    ) {
        let c = rlpta_netlist::parse(
            "t\nV1 in 0 0\nR1 in a 100\nD1 a 0 DX\n.model DX D(IS=1e-14)\n",
        )
        .expect("parses");
        let values: Vec<f64> = (0..n_points)
            .map(|i| v_stop * i as f64 / (n_points - 1) as f64)
            .collect();
        let sweep = DcSweep::new("V1", values).expect("valid sweep");
        let serial = DcEngine::builder()
            .threads(1)
            .sweep_chunk(chunk)
            .build()
            .sweep(&c, &sweep)
            .expect("serial sweep");
        let parallel = DcEngine::builder()
            .threads(threads)
            .sweep_chunk(chunk)
            .build()
            .sweep(&c, &sweep)
            .expect("parallel sweep");
        // PartialEq on f64 vectors: bitwise-identical solutions and stats.
        prop_assert_eq!(serial, parallel);
    }

    /// Telemetry streams merge deterministically: a parallel batch run
    /// produces exactly the serial run's event stream after the job-order
    /// merge, modulo worker ids.
    #[test]
    fn parallel_batch_event_stream_matches_serial(
        n_circuits in 1usize..6,
        threads in 2usize..5,
        v in 1.0f64..10.0,
    ) {
        let circuits: Vec<_> = (0..n_circuits)
            .map(|i| {
                rlpta_netlist::parse(&format!(
                    "c{i}\nV1 in 0 {v}\nR1 in out {}k\nD1 out 0 DX\n.model DX D(IS=1e-14)\n",
                    i + 1
                ))
                .expect("parses")
            })
            .collect();
        let run = |threads: usize| {
            let collector = std::sync::Arc::new(rlpta_core::Collector::new());
            let engine = DcEngine::builder()
                .kind(PtaKind::cepta())
                .threads(threads)
                .telemetry(collector.clone())
                .build();
            let _ = engine.solve_batch(&circuits);
            let mut events = collector.events();
            // Out-of-band wall-clock payloads are scheduler-dependent by
            // nature; determinism is claimed modulo timing and worker ids.
            events.retain(|e| !e.payload.is_timing());
            for e in &mut events {
                e.span.worker = 0;
            }
            events
        };
        prop_assert_eq!(run(1), run(threads));
    }

    /// The escalation ladder is total: random — including badly scaled —
    /// nonlinear circuits either solve to a finite point or come back as a
    /// structured `SolveError`. Never a panic, never poison in an `Ok`.
    #[test]
    fn robust_solver_is_total(
        v in -50.0f64..50.0,
        r_ohm in 1e-2f64..1e8,
        is_sat in 1e-18f64..1e-10,
        stages in 1usize..4,
    ) {
        let mut deck = format!("rand\nV1 n0 0 {v}\n");
        for i in 0..stages {
            deck += &format!("R{i} n{i} n{} {r_ohm}\n", i + 1);
            deck += &format!("D{i} n{} 0 DX\n", i + 1);
        }
        deck += &format!(".model DX D(IS={is_sat:e})\n");
        let c = rlpta_netlist::parse(&deck).expect("parses");
        let solver = RobustDcSolver::default()
            .with_budget(SolveBudget::UNLIMITED.nr_iterations(50_000));
        match solver.solve(&c) {
            Ok(sol) => {
                prop_assert!(sol.stats.converged);
                prop_assert!(sol.x.iter().all(|x| x.is_finite()),
                    "non-finite entry in accepted solution");
            }
            // Any typed error is an acceptable outcome for a hostile deck;
            // reaching here at all means no panic and no hang.
            Err(SolveError::InvalidConfig { .. }) =>
                prop_assert!(false, "valid deck rejected as config error"),
            Err(_) => {}
        }
    }
}

#[cfg(feature = "faults")]
mod under_faults {
    use super::*;
    use rlpta_core::FaultPlan;

    proptest! {
        /// Totality holds under seeded fault injection too: intermittent
        /// singular pivots and NaN stamps never escape as panics or
        /// non-finite solutions.
        #[test]
        fn robust_solver_is_total_under_faults(
            seed in any::<u64>(),
            period in 2u64..12,
            v in 1.0f64..20.0,
            r_ohm in 10.0f64..1e5,
        ) {
            let deck = format!(
                "clamp\nV1 in 0 {v}\nR1 in out {r_ohm}\nD1 out 0 DX\n.model DX D(IS=1e-14)\n"
            );
            let c = rlpta_netlist::parse(&deck).expect("parses");
            let solver = RobustDcSolver::default()
                .with_budget(SolveBudget::UNLIMITED.nr_iterations(50_000));
            FaultPlan::seeded(seed)
                .singular_pivots(period)
                .nan_stamps(period * 3)
                .install();
            let result = solver.solve(&c);
            FaultPlan::clear();
            if let Ok(sol) = result {
                prop_assert!(sol.x.iter().all(|x| x.is_finite()));
            }
        }
    }
}
