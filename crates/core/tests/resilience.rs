//! Integration tests for the resilience layer: budget deadlines hold in
//! real time, and the escalation ladder dominates every individual strategy
//! on the benchmark suites.

use rlpta_core::{
    DcEngine, GminStepping, LadderStage, NewtonConfig, NewtonHomotopy, NewtonRaphson, PtaConfig,
    PtaKind, PtaSolver, RobustDcSolver, SimpleStepping, SolveBudget, SolveError, SourceStepping,
};
use std::time::{Duration, Instant};

/// A ladder that grinds essentially forever: Newton converges at every
/// pseudo-time point, but the steady-state tolerance is unreachable, so
/// every step is *accepted* and the march would run its hundred-million
/// step budget. Only the wall-clock deadline can stop it — in any build
/// profile.
fn grinding_stages() -> Vec<LadderStage> {
    vec![LadderStage::Cepta(PtaConfig {
        max_steps: 100_000_000,
        steady_ftol: 1e-300,
        newton: NewtonConfig {
            max_iterations: 50,
            ..NewtonConfig::default()
        },
        ..PtaConfig::default()
    })]
}

#[test]
fn budget_deadline_holds_within_factor_two() {
    let c = rlpta_circuits::by_name("SCHMITT")
        .expect("known benchmark")
        .circuit;
    let deadline = Duration::from_millis(250);
    let engine = DcEngine::builder()
        .ladder(grinding_stages())
        .budget(SolveBudget::with_deadline(deadline))
        .build();
    let t0 = Instant::now();
    let result = engine.solve(&c);
    let elapsed = t0.elapsed();
    match result {
        Err(SolveError::BudgetExhausted { stats, .. }) => {
            assert!(
                stats.nr_iterations > 0,
                "the grinder should have done real work before the deadline"
            );
        }
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
    // The deadline is checked at every NR iteration, so overshoot is at most
    // one iteration plus scheduling noise — 2× is a generous envelope.
    assert!(
        elapsed < 2 * deadline,
        "deadline {deadline:?} overshot: took {elapsed:?}"
    );
}

/// The ladder must solve every suite circuit that *any* individual strategy
/// solves (the whole point of escalation). Checked over a fast subset
/// spanning diode, BJT and MOS families.
#[test]
fn ladder_dominates_every_individual_strategy() {
    let names = [
        "D10", "D11", "gm1", "bias", "mosamp", "SCHMITT", "latch", "Adding",
    ];
    let robust = RobustDcSolver::default();
    for name in names {
        let c = rlpta_circuits::by_name(name)
            .expect("known benchmark")
            .circuit;
        let individual_solved = NewtonRaphson::default().solve(&c).is_ok()
            || GminStepping::default().solve(&c).is_ok()
            || SourceStepping::default().solve(&c).is_ok()
            || PtaSolver::with_config(
                PtaKind::cepta(),
                SimpleStepping::default(),
                PtaConfig::default(),
            )
            .solve(&c)
            .is_ok()
            || PtaSolver::with_config(
                PtaKind::dpta(),
                SimpleStepping::default(),
                PtaConfig::default(),
            )
            .solve(&c)
            .is_ok()
            || NewtonHomotopy::default().solve(&c).is_ok();
        if individual_solved {
            let sol = robust
                .solve(&c)
                .unwrap_or_else(|e| panic!("{name}: a strategy solves this but the ladder failed: {e}"));
            assert!(sol.stats.converged, "{name}");
            assert!(
                sol.x.iter().all(|v| v.is_finite()),
                "{name}: non-finite solution"
            );
        }
    }
}
