//! Bit-identity of the precompiled stamp-plan assembly pipeline against the
//! triplet reference path.
//!
//! Both assembly modes drive the same device `stamp` bodies through
//! different sinks, so every value, every summation order and every fault
//! draw must line up exactly. These properties pin that down: for a family
//! of generated circuits (linear ladders, diode clamps, BJT bias chains,
//! MOSFET inverters), plan-stamped solves must be **bitwise** equal to
//! triplet-path solves — including under seeded NaN-stamp fault injection,
//! where the non-finite guard has to trip at the same iteration and produce
//! the same outcome.

use proptest::prelude::*;
use rlpta_core::{AssemblyMode, DcEngine, DcSweep, Solution, SolveError};
use rlpta_mna::Circuit;

/// Zeroes the wall-clock `elapsed` fields inside escalation-ladder error
/// trails: they are the only nondeterministic payload in a [`SolveError`],
/// and identity is claimed modulo timing.
fn strip_timing(e: SolveError) -> SolveError {
    match e {
        SolveError::AllStrategiesFailed { mut attempts } => {
            for a in &mut attempts {
                a.elapsed = std::time::Duration::ZERO;
                *a.error = strip_timing((*a.error).clone());
            }
            SolveError::AllStrategiesFailed { attempts }
        }
        other => other,
    }
}

/// Result comparison for both-mode runs: bitwise on success, structural
/// (modulo wall-clock) on failure.
fn normalize(
    r: Result<Solution, SolveError>,
) -> Result<Solution, SolveError> {
    r.map_err(strip_timing)
}

/// A small generated family exercising every stamp shape: resistor
/// ladders (linear), diode clamps (two-terminal nonlinear), BJT bias
/// chains (three-terminal), and a MOSFET inverter (four-terminal with
/// orientation-dependent operand permutation).
fn deck(kind: usize, v: f64, r: f64, n: usize) -> String {
    match kind % 4 {
        0 => {
            let mut d = format!("ladder\nV1 n0 0 {v}\n");
            for i in 0..n {
                d += &format!("R{i} n{i} n{} {r}\n", i + 1);
            }
            d += &format!("RL n{n} 0 {r}\n");
            d
        }
        1 => format!(
            "clamp\nV1 in 0 {v}\nR1 in out {r}\nD1 out 0 DX\nD2 0 out DX\n.model DX D(IS=1e-14)\n"
        ),
        2 => format!(
            "bias\nV1 vcc 0 {v}\nR1 vcc b {r}\nR2 b 0 22k\nRC vcc c 4.7k\nRE e 0 1k\nQ1 c b e QN\n.model QN NPN(IS=1e-15 BF=100)\n"
        ),
        _ => format!(
            "inv\nVDD vdd 0 {v}\nVIN g 0 {}\nRD vdd d {r}\nM1 d g 0 0 NM W=20u L=2u\n.model NM NMOS(VTO=0.7 KP=1e-4)\n",
            v * 0.5
        ),
    }
}

fn parse(kind: usize, v: f64, r: f64, n: usize) -> Circuit {
    rlpta_netlist::parse(&deck(kind, v, r, n)).expect("generated deck parses")
}

/// Solves the same circuit through both assembly modes with an otherwise
/// identical engine and returns both results.
fn solve_both(
    c: &Circuit,
    robust: bool,
) -> (
    Result<Solution, SolveError>,
    Result<Solution, SolveError>,
) {
    let build = |mode: AssemblyMode| {
        let b = DcEngine::builder().assembly(mode);
        let b = if robust { b.robust() } else { b.newton() };
        b.build()
    };
    (
        build(AssemblyMode::Plan).solve(c),
        build(AssemblyMode::Triplet).solve(c),
    )
}

/// `PartialEq` on `f64` treats `0.0 == -0.0`; bit-identity is stricter.
fn assert_bits_equal(a: &Solution, b: &Solution) {
    assert_eq!(a.x.len(), b.x.len());
    for (i, (pa, pb)) in a.x.iter().zip(&b.x).enumerate() {
        assert_eq!(
            pa.to_bits(),
            pb.to_bits(),
            "entry {i} differs bitwise: {pa:?} vs {pb:?}"
        );
    }
    assert_eq!(a.stats, b.stats, "run statistics diverged between modes");
}

proptest! {
    /// Plain Newton solves are bit-identical between the plan and triplet
    /// assembly paths across the generated circuit family.
    #[test]
    fn plan_newton_bit_identical_to_triplet(
        kind in 0usize..4,
        v in 0.5f64..15.0,
        r in 50.0f64..50_000.0,
        n in 1usize..8,
    ) {
        let c = parse(kind, v, r, n);
        let (plan, triplet) = solve_both(&c, false);
        match (plan, triplet) {
            (Ok(a), Ok(b)) => assert_bits_equal(&a, &b),
            (a, b) => prop_assert_eq!(normalize(a), normalize(b), "outcomes diverged between modes"),
        }
    }

    /// The full escalation ladder — gmin bumps, continuation, PTA rungs —
    /// stays bit-identical too: the bump-plan diagonal replay and the
    /// solver extra-stamp hooks reproduce the triplet summation order.
    #[test]
    fn plan_robust_ladder_bit_identical_to_triplet(
        kind in 0usize..4,
        v in 0.5f64..30.0,
        r in 1.0f64..1e6,
        n in 1usize..6,
    ) {
        let c = parse(kind, v, r, n);
        let (plan, triplet) = solve_both(&c, true);
        match (plan, triplet) {
            (Ok(a), Ok(b)) => assert_bits_equal(&a, &b),
            (a, b) => prop_assert_eq!(normalize(a), normalize(b), "outcomes diverged between modes"),
        }
    }

    /// Sweeps re-stamp one persistent matrix across the warm-start chain;
    /// every point of a plan-assembled sweep — serial or chunked parallel —
    /// must match the triplet sweep bitwise.
    #[test]
    fn plan_sweep_bit_identical_to_triplet(
        n_points in 2usize..12,
        chunk in 1usize..6,
        threads in 1usize..5,
        v_stop in 0.5f64..5.0,
    ) {
        let c = rlpta_netlist::parse(
            "t\nV1 in 0 0\nR1 in a 100\nD1 a 0 DX\n.model DX D(IS=1e-14)\n",
        )
        .expect("parses");
        let values: Vec<f64> = (0..n_points)
            .map(|i| v_stop * i as f64 / (n_points - 1) as f64)
            .collect();
        let sweep = DcSweep::new("V1", values).expect("valid sweep");
        let run = |mode: AssemblyMode| {
            DcEngine::builder()
                .assembly(mode)
                .threads(threads)
                .sweep_chunk(chunk)
                .build()
                .sweep(&c, &sweep)
                .expect("sweep solves")
        };
        prop_assert_eq!(run(AssemblyMode::Plan), run(AssemblyMode::Triplet));
    }
}

#[cfg(feature = "faults")]
mod under_faults {
    use super::*;
    use rlpta_core::FaultPlan;

    proptest! {
        /// Seeded NaN-stamp injection draws the same fault sequence in both
        /// modes (the plan's declare pass consumes zero draws), so the
        /// non-finite guard trips at the same iteration and the outcome —
        /// success, error, or recovered retry — is identical bit for bit.
        #[test]
        fn plan_matches_triplet_under_nan_stamps(
            seed in any::<u64>(),
            period in 1u64..10,
            kind in 0usize..4,
            v in 1.0f64..15.0,
        ) {
            let c = parse(kind, v, 1_000.0, 3);
            let run = |mode: AssemblyMode| {
                DcEngine::builder()
                    .assembly(mode)
                    .robust()
                    .fault_plan(FaultPlan::seeded(seed).nan_stamps(period))
                    .build()
                    .solve(&c)
            };
            let plan = run(AssemblyMode::Plan);
            let triplet = run(AssemblyMode::Triplet);
            match (plan, triplet) {
                (Ok(a), Ok(b)) => assert_bits_equal(&a, &b),
                (a, b) => prop_assert_eq!(normalize(a), normalize(b), "fault outcomes diverged"),
            }
        }

        /// Mixed singular-pivot plus NaN-stamp chaos: totality and
        /// bit-identity hold together.
        #[test]
        fn plan_matches_triplet_under_mixed_faults(
            seed in any::<u64>(),
            period in 2u64..8,
            v in 1.0f64..12.0,
            r in 100.0f64..10_000.0,
        ) {
            let c = parse(1, v, r, 1);
            let run = |mode: AssemblyMode| {
                DcEngine::builder()
                    .assembly(mode)
                    .robust()
                    .fault_plan(
                        FaultPlan::seeded(seed)
                            .singular_pivots(period)
                            .nan_stamps(period * 3),
                    )
                    .build()
                    .solve(&c)
            };
            let plan = run(AssemblyMode::Plan);
            let triplet = run(AssemblyMode::Triplet);
            match (plan, triplet) {
                (Ok(a), Ok(b)) => assert_bits_equal(&a, &b),
                (a, b) => prop_assert_eq!(normalize(a), normalize(b), "fault outcomes diverged"),
            }
        }
    }
}
