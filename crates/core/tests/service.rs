//! Property-based tests for the service layer: structure keys never
//! collide across generated circuit families, cached-plan replays are
//! bit-identical to cold solves, and warm-started cached solves certify
//! exactly like cold ones — with faults injected where the harness allows.

use proptest::prelude::*;
use rlpta_core::prelude::*;

/// A two-parameter circuit family: an `n`-stage resistor ladder with `d`
/// diode clamps hanging off its first nodes. The *structure* is exactly
/// `(n, d)`; `v` and `r_kohm` only move values.
fn family_deck(n: usize, d: usize, v: f64, r_kohm: f64) -> String {
    let mut deck = format!("fam\nV1 n0 0 {v}\n");
    for i in 0..n {
        deck += &format!("R{i} n{i} n{} {r_kohm}k\n", i + 1);
    }
    deck += &format!("RL n{n} 0 {r_kohm}k\n");
    for k in 0..d {
        deck += &format!("D{k} n{} 0 DX\n", (k % n) + 1);
    }
    if d > 0 {
        deck += ".model DX D(IS=1e-14)\n";
    }
    deck
}

fn family_circuit(n: usize, d: usize, v: f64, r_kohm: f64) -> rlpta_mna::Circuit {
    rlpta_netlist::parse(&family_deck(n, d, v, r_kohm)).expect("family decks parse")
}

proptest! {
    /// Two circuits from the family share a [`StructureKey`] **iff** they
    /// share the structural parameters — parameter values never enter the
    /// key, topology always does.
    #[test]
    fn structure_keys_separate_the_circuit_family(
        n1 in 1usize..8, d1 in 0usize..4,
        n2 in 1usize..8, d2 in 0usize..4,
        v1 in 0.5f64..20.0, r1 in 0.1f64..100.0,
        v2 in 0.5f64..20.0, r2 in 0.1f64..100.0,
    ) {
        let k1 = StructureKey::of(&family_circuit(n1, d1, v1, r1));
        let k2 = StructureKey::of(&family_circuit(n2, d2, v2, r2));
        let same_structure = n1 == n2 && d1 == d2;
        prop_assert_eq!(
            k1 == k2,
            same_structure,
            "keys {} / {} for structures ({n1},{d1}) / ({n2},{d2})",
            k1,
            k2
        );
    }

    /// Replaying a cached symbolic plan is **bit-identical** to the cold
    /// solve that seeded it: with warm starts disabled, the service's
    /// second solve of a structure runs the exact same float program.
    #[test]
    fn cached_plan_solves_are_bit_identical_to_cold(
        n in 1usize..6, d in 1usize..4,
        v in 0.5f64..15.0, r_kohm in 0.1f64..50.0,
    ) {
        let circuit = family_circuit(n, d, v, r_kohm);
        let mut service = SimService::builder(DcEngine::builder().build())
            .warm_starts(false)
            .build();
        let cold = service.solve(&circuit, JobTicket::default()).expect("cold solve");
        prop_assert_eq!(service.cache_stats().misses, 1);
        let replay = service.solve(&circuit, JobTicket::default()).expect("cached solve");
        prop_assert_eq!(service.cache_stats().hits, 1);
        prop_assert_eq!(service.cache_stats().invalidations, 0);
        // PartialEq on the f64 vector: bitwise identity, not tolerance.
        prop_assert_eq!(cold.x, replay.x);
        prop_assert_eq!(cold.stats.nr_iterations, replay.stats.nr_iterations);
    }

    /// Warm-started cached solves pass the same certification gate as cold
    /// solves: a repeat request for a (value-jittered) structure comes back
    /// with exactly the cold solve's health grade.
    #[test]
    fn warm_started_solves_certify_identically_to_cold(
        n in 1usize..6, d in 1usize..4,
        v in 0.5f64..15.0, r_kohm in 0.1f64..50.0,
        jitter in -0.01f64..0.01,
    ) {
        let cold_circuit = family_circuit(n, d, v, r_kohm);
        let warm_circuit = family_circuit(n, d, v * (1.0 + jitter), r_kohm);
        let mut service = SimService::builder(DcEngine::builder().build()).build();
        let cold = service.solve(&cold_circuit, JobTicket::default()).expect("cold solve");
        let warm = service.solve(&warm_circuit, JobTicket::default()).expect("warm solve");
        prop_assert_eq!(service.cache_stats().hits, 1);
        let cold_grade = cold.health.as_ref().expect("cold graded").grade;
        let warm_grade = warm.health.as_ref().expect("warm graded").grade;
        prop_assert_eq!(cold_grade, warm_grade);
        prop_assert_eq!(cold_grade, HealthGrade::Certified);
    }
}

#[cfg(feature = "faults")]
mod under_faults {
    use super::*;
    use rlpta_core::FaultPlan;

    proptest! {
        /// The certification contract survives fault injection: with
        /// seeded singular pivots hitting both paths (at different
        /// operation counts — the warm path does less LU work, so the
        /// periodic schedule lands elsewhere), a warm-started cached
        /// solve still passes the same gate as the cold solve of the
        /// same structure. Neither side is ever `Rejected` — the
        /// workspace falls back to a full factorization rather than
        /// certify a corrupted replay — and both land on the same
        /// operating point to certification tolerance.
        #[test]
        fn warm_solves_certify_like_cold_under_faults(
            seed in any::<u64>(),
            period in 3u64..16,
            n in 1usize..5, d in 1usize..3,
            v in 1.0f64..12.0, r_kohm in 0.5f64..20.0,
        ) {
            let engine = DcEngine::builder()
                .retries(2)
                .fault_plan(FaultPlan::seeded(seed).singular_pivots(period))
                .build();
            let circuit = family_circuit(n, d, v, r_kohm);
            let mut service = SimService::builder(engine).build();
            let cold = service.solve(&circuit, JobTicket::default()).expect("cold solve");
            let warm = service.solve(&circuit, JobTicket::default()).expect("warm solve");
            let cold_grade = cold.health.as_ref().expect("cold graded").grade;
            let warm_grade = warm.health.as_ref().expect("warm graded").grade;
            prop_assert!(cold_grade != HealthGrade::Rejected, "cold solve rejected");
            prop_assert!(warm_grade != HealthGrade::Rejected, "warm solve rejected");
            for (a, b) in cold.x.iter().zip(&warm.x) {
                prop_assert!(
                    (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                    "operating points diverged: {a} vs {b}"
                );
            }
        }
    }
}
