//! Property tests for the flight recorder's ring-buffer window semantics
//! and a determinism check that pooled execution freezes the same
//! per-job incident bodies as a serial run (after normalizing the
//! scheduler-dependent worker ids away, exactly like the CI stream diff).

use proptest::prelude::*;
use rlpta_core::prelude::*;
use rlpta_core::telemetry::{Event, Payload, Sink, Span};
use std::sync::Arc;

fn nr_event(job: Option<usize>, iteration: usize) -> Event {
    Event {
        span: Span { job, worker: 0 },
        payload: Payload::NrIteration { iteration },
    }
}

proptest! {
    /// After `count` emits into a `depth`-deep ring, the live window holds
    /// exactly the last `min(count, depth)` events, oldest first; the
    /// window an incident freezes additionally ends with the trigger
    /// event itself.
    #[test]
    fn window_is_last_n_in_order(depth in 1usize..64, count in 0usize..200) {
        let rec = FlightRecorder::new(depth);
        for i in 0..count {
            rec.emit(&nr_event(Some(7), i));
        }
        let expect_live = count.min(depth);
        let live: Vec<usize> = rec
            .window(Some(7))
            .iter()
            .map(|e| match e.payload {
                Payload::NrIteration { iteration } => iteration,
                _ => usize::MAX,
            })
            .collect();
        prop_assert_eq!(live.len(), expect_live);
        let first = count - expect_live;
        prop_assert!(
            live.iter().copied().eq(first..count),
            "live window {:?} is not the ordered tail of 0..{}", live, count
        );

        // The trigger lands in the ring first, so the frozen window is the
        // last min(count + 1, depth) events with the trigger as its tail.
        rec.emit(&Event {
            span: Span { job: Some(7), worker: 0 },
            payload: Payload::SolveFailed { error: "boom".into() },
        });
        let incidents = rec.incidents();
        prop_assert_eq!(incidents.len(), 1);
        let frozen = &incidents[0].window;
        prop_assert_eq!(frozen.len(), (count + 1).min(depth));
        prop_assert!(
            matches!(frozen.last().map(|e| &e.payload), Some(Payload::SolveFailed { .. })),
            "frozen window must end with the trigger event"
        );
        let prefix: Vec<usize> = frozen[..frozen.len() - 1]
            .iter()
            .map(|e| match e.payload {
                Payload::NrIteration { iteration } => iteration,
                _ => usize::MAX,
            })
            .collect();
        let first = count - (frozen.len() - 1);
        prop_assert!(
            prefix.iter().copied().eq(first..count),
            "frozen prefix {:?} is not the ordered tail of 0..{}", prefix, count
        );
    }
}

/// The CI determinism normalizer: pool worker ids are the one
/// scheduler-dependent field in an event body.
fn normalize_workers(json: &str) -> String {
    let mut out = String::with_capacity(json.len());
    let mut rest = json;
    while let Some(at) = rest.find("\"worker\":") {
        let digits_from = at + "\"worker\":".len();
        out.push_str(&rest[..digits_from]);
        out.push('0');
        rest = rest[digits_from..].trim_start_matches(|c: char| c.is_ascii_digit());
    }
    out.push_str(rest);
    out
}

/// Everything in an incident that is per-job deterministic (seq numbers,
/// global event counts and cache folds legitimately depend on cross-job
/// freeze order, so they stay out of the comparison).
fn comparable_body(incident: &rlpta_core::IncidentReport) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "trigger={} job={:?} label={:?} key={:?}",
        incident.trigger.name(),
        incident.job,
        incident.label,
        incident.structure_key
    );
    let _ = writeln!(s, "trigger_event={}", normalize_workers(&incident.trigger_event.to_json()));
    for e in &incident.window {
        let _ = writeln!(s, "w {}", normalize_workers(&e.to_json()));
    }
    for a in &incident.attempts {
        let _ = writeln!(s, "a {} {} {}", a.strategy, a.error, a.nr_iterations);
    }
    for t in &incident.trajectory {
        let _ = writeln!(
            s,
            "t {} {} {} {:?} {}",
            t.accepted, t.h, t.h_next, t.gamma, t.time
        );
    }
    s
}

fn failing_batch() -> Vec<rlpta_mna::Circuit> {
    (0..6)
        .map(|i| {
            rlpta_netlist::parse(&format!(
                "clamp{i}\nV1 in 0 {}\nR1 in out 1k\nD1 out 0 DX\n.model DX D(IS=1e-14)",
                3.0 + 0.5 * i as f64
            ))
            .expect("valid netlist")
        })
        .collect()
}

fn incident_bodies(threads: usize) -> Vec<(Option<usize>, String)> {
    let recorder = Arc::new(FlightRecorder::new(64));
    let engine = DcEngine::builder()
        .robust()
        .budget(SolveBudget {
            wall_clock: None,
            max_nr_iterations: Some(1),
            max_steps: None,
        })
        .threads(threads)
        .telemetry(recorder.clone())
        .build();
    let results = engine.solve_batch(&failing_batch());
    assert!(
        results.iter().all(Result::is_err),
        "starved budget must fail every job"
    );
    let mut bodies: Vec<(Option<usize>, String)> = recorder
        .incidents()
        .iter()
        .map(|i| (i.job, comparable_body(i)))
        .collect();
    bodies.sort();
    bodies
}

/// A 4-worker pooled batch freezes byte-identical per-job incident bodies
/// to a serial run once worker ids are normalized — incident capture is
/// scheduling-independent.
#[test]
fn pooled_incidents_match_serial_after_worker_normalization() {
    let serial = incident_bodies(1);
    assert_eq!(serial.len(), 6, "one incident per failed batch job");
    let pooled = incident_bodies(4);
    assert_eq!(serial, pooled);
}
