//! The flight recorder's hot-path contract: after construction, emitting
//! the plain-old-data events of the solver hot loop into an attached
//! recorder performs **zero** heap allocations — every ring slot is
//! preallocated, and a POD [`Payload`] clones without touching the heap.
//!
//! One test only: the counting allocator is process-global, so a second
//! concurrently running test would pollute the count.

use rlpta_core::telemetry::{Event, Payload, Sink, Span};
use rlpta_core::FlightRecorder;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn emit_allocates_nothing_after_construction() {
    let recorder = FlightRecorder::new(64);
    let span = Span {
        job: Some(0),
        worker: 0,
    };
    // Warm the slot assignment (first emit for a job claims a slot) and
    // fault in any lazily-initialized lock state before counting.
    recorder.emit(&Event {
        span,
        payload: Payload::NrIteration { iteration: 0 },
    });

    let events = [
        Event {
            span,
            payload: Payload::NrIteration { iteration: 1 },
        },
        Event {
            span,
            payload: Payload::LuFactorized { dim: 132 },
        },
        Event {
            span,
            payload: Payload::LuReplayed { dim: 132 },
        },
        Event {
            span,
            payload: Payload::NrOutcome {
                iterations: 7,
                converged: true,
                lu_factorizations: 1,
                lu_refactorizations: 6,
                residual: 1e-12,
            },
        },
    ];

    let before = ALLOCS.load(Ordering::SeqCst);
    // 300 emits wrap the 64-deep ring several times over, so both the
    // fill and the steady-state overwrite paths are exercised.
    for i in 0..300 {
        recorder.emit(&events[i % events.len()]);
    }
    let after = ALLOCS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "recorder emit hot path allocated {} time(s) over 300 POD events",
        after - before
    );
    // The recorder really did capture the stream (last 64 survive).
    assert_eq!(recorder.window(Some(0)).len(), 64);
}
