//! Chaos suite: deterministic fault injection against the full escalation
//! ladder.
//!
//! Every run in this file executes with a [`FaultPlan`] installed — singular
//! pivots in the sparse LU, NaN device stamps, or an oscillating residual —
//! and must end in a *structured* outcome: either a finite solution (the
//! solver rode out an intermittent fault) or a typed [`SolveError`]. Zero
//! panics, zero hangs, and on total failure a populated per-stage attempt
//! trail.
//!
//! Requires `--features faults`.

use proptest::prelude::*;
use rlpta_core::{
    certify, DcEngine, DcSweep, FaultPlan, GminStepping, HealthGrade, LadderStage, NewtonConfig,
    NewtonHomotopy, PtaConfig, RobustDcSolver, SolveBudget, SolveError, SourceStepping,
    SweepReport,
};
use rlpta_mna::Circuit;
use std::time::Duration;

/// Three circuit families: diode network, BJT mirror bank, MOS amplifier.
fn chaos_circuits() -> Vec<(&'static str, Circuit)> {
    ["D10", "gm1", "mosamp"]
        .iter()
        .map(|n| {
            (
                *n,
                rlpta_circuits::by_name(n).expect("known benchmark").circuit,
            )
        })
        .collect()
}

/// A deliberately small ladder so a run where *every* stage fails still
/// finishes in milliseconds and produces a full trail.
fn tiny_stages() -> Vec<LadderStage> {
    let newton = NewtonConfig {
        max_iterations: 10,
        ..NewtonConfig::default()
    };
    vec![
        LadderStage::DampedNewton(newton.clone()),
        LadderStage::GminStepping(GminStepping {
            newton: newton.clone(),
            ..GminStepping::default()
        }),
        LadderStage::SourceStepping(SourceStepping {
            min_increment: 0.05,
            newton: newton.clone(),
            ..SourceStepping::default()
        }),
        LadderStage::Cepta(PtaConfig {
            max_steps: 15,
            newton: newton.clone(),
            ..PtaConfig::default()
        }),
        LadderStage::Dpta(PtaConfig {
            max_steps: 15,
            newton: newton.clone(),
            ..PtaConfig::default()
        }),
        LadderStage::NewtonHomotopy(NewtonHomotopy {
            min_step: 0.099,
            newton,
            ..NewtonHomotopy::default()
        }),
    ]
}

/// The tiny ladder on a serial engine, with a wall-clock backstop against
/// hangs; generous enough that the tiny stages finish long before it trips.
fn tiny_engine() -> DcEngine {
    DcEngine::builder()
        .ladder(tiny_stages())
        .budget(SolveBudget::with_deadline(Duration::from_secs(30)))
        .build()
}

const STAGE_NAMES: [&str; 6] = [
    "newton",
    "gmin-stepping",
    "source-stepping",
    "cepta",
    "dpta",
    "newton-homotopy",
];

fn constant_fault_plans(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("singular-pivot", FaultPlan::seeded(seed).singular_pivots(1)),
        ("nan-stamp", FaultPlan::seeded(seed).nan_stamps(1)),
        (
            "oscillating-residual",
            FaultPlan::seeded(seed).oscillating_residual(10.0),
        ),
    ]
}

/// ≥ 50 seeded runs (3 fault kinds × 3 circuit families × 6 seeds = 54),
/// each under a *constant* fault no strategy can survive: every run must
/// return a structured error carrying the ordered per-stage attempt trail.
#[test]
fn constant_faults_produce_full_attempt_trails() {
    let circuits = chaos_circuits();
    let solver = tiny_engine();
    let mut runs = 0usize;
    for seed in 0..6u64 {
        for (fault_name, plan) in constant_fault_plans(seed) {
            for (circ_name, circuit) in &circuits {
                plan.install();
                let result = solver.solve(circuit);
                FaultPlan::clear();
                runs += 1;
                // Every failure message carries the full reproducing plan
                // (seed included), so a red run is one command away.
                let ctx =
                    format!("fault={fault_name} circuit={circ_name} seed={seed} repro={plan:?}");
                match result {
                    Err(SolveError::AllStrategiesFailed { attempts }) => {
                        assert_eq!(attempts.len(), STAGE_NAMES.len(), "{ctx}");
                        for (attempt, expected) in attempts.iter().zip(STAGE_NAMES) {
                            assert_eq!(attempt.strategy, expected, "{ctx}");
                            assert!(
                                matches!(
                                    *attempt.error,
                                    SolveError::NonConvergent { .. }
                                        | SolveError::Singular(_)
                                        | SolveError::NonFinite { .. }
                                ),
                                "{ctx}: unexpected stage error {:?}",
                                attempt.error
                            );
                        }
                    }
                    other => panic!("{ctx}: expected AllStrategiesFailed, got {other:?}"),
                }
            }
        }
    }
    assert!(runs >= 50, "chaos coverage: {runs} runs");
}

/// Intermittent faults (period > 1): the solver may recover or fail, but the
/// outcome must always be structured — a finite solution or a typed error —
/// and the run must respect the wall-clock backstop.
#[test]
fn intermittent_faults_never_panic_or_hang() {
    let circuits = chaos_circuits();
    let solver = tiny_engine();
    let mut runs = 0usize;
    for seed in 0..6u64 {
        let period = 2 + seed % 5;
        let plans = vec![
            FaultPlan::seeded(seed).singular_pivots(period),
            FaultPlan::seeded(seed).nan_stamps(period * 3),
            FaultPlan::seeded(seed)
                .singular_pivots(period * 7)
                .nan_stamps(period * 5)
                .oscillating_residual(1e-9),
        ];
        for plan in plans {
            for (circ_name, circuit) in &circuits {
                plan.install();
                let result = solver.solve(circuit);
                FaultPlan::clear();
                runs += 1;
                let ctx = format!(
                    "circuit={circ_name} seed={seed} period={period} repro={plan:?}"
                );
                match result {
                    Ok(sol) => {
                        assert!(
                            sol.x.iter().all(|v| v.is_finite()),
                            "{ctx}: poison leaked into a returned solution"
                        );
                        assert!(sol.stats.converged, "{ctx}");
                        // Every engine-returned solution carries a health
                        // report, and a fault-corrupted point is never
                        // silently certified: a surviving `Rejected` grade
                        // is demoted inside the ladder, so what comes back
                        // is at worst `Suspect`.
                        let health = sol.health.as_ref().unwrap_or_else(|| {
                            panic!("{ctx}: returned solution without a health report")
                        });
                        assert_ne!(
                            health.grade,
                            HealthGrade::Rejected,
                            "{ctx}: rejected solution returned ({health:?})"
                        );
                    }
                    Err(
                        SolveError::AllStrategiesFailed { .. }
                        | SolveError::BudgetExhausted { .. }
                        | SolveError::NonConvergent { .. }
                        | SolveError::CertificationFailed { .. },
                    ) => {}
                    Err(other) => panic!("{ctx}: unstructured failure {other:?}"),
                }
            }
        }
    }
    assert!(runs >= 50, "chaos coverage: {runs} runs");
}

/// Faults must not outlive their plan: after `clear()` the same solver and
/// circuit succeed normally.
#[test]
fn cleared_plan_restores_clean_behavior() {
    let c = rlpta_circuits::by_name("D10").expect("known benchmark").circuit;
    let solver = RobustDcSolver::default();

    let plan = FaultPlan::seeded(7).singular_pivots(1);
    plan.install();
    let poisoned = solver.solve(&c);
    FaultPlan::clear();
    assert!(
        poisoned.is_err(),
        "constant singular pivots must fail (repro={plan:?})"
    );

    let clean = solver
        .solve(&c)
        .unwrap_or_else(|e| panic!("clean solve after clear() of repro={plan:?}: {e}"));
    assert!(clean.stats.converged, "repro={plan:?}");
    assert!(
        clean.x.iter().all(|v| v.is_finite()),
        "repro={plan:?}"
    );
}

/// Fault injection inside *pooled* workers: [`FaultPlan`] state is
/// thread-local, so the engine must re-install the plan inside every job.
/// Each faulted job must surface a structured per-job error — no panic
/// escapes, no slot is lost, and the pool is not poisoned for clean work
/// afterwards.
#[test]
fn pooled_workers_surface_faults_as_structured_errors() {
    let circuits: Vec<Circuit> = chaos_circuits().into_iter().map(|(_, c)| c).collect();
    let plan = FaultPlan::seeded(11).singular_pivots(1);
    let faulted = DcEngine::builder()
        .ladder(tiny_stages())
        .budget(SolveBudget::with_deadline(Duration::from_secs(30)))
        .threads(3)
        .fault_plan(plan)
        .build();
    let results = faulted.solve_batch(&circuits);
    assert_eq!(results.len(), circuits.len(), "one result slot per job");
    for (i, result) in results.iter().enumerate() {
        match result {
            Err(SolveError::AllStrategiesFailed { attempts }) => {
                assert_eq!(attempts.len(), STAGE_NAMES.len(), "job {i} repro={plan:?}");
                for (attempt, expected) in attempts.iter().zip(STAGE_NAMES) {
                    assert_eq!(attempt.strategy, expected, "job {i} repro={plan:?}");
                }
            }
            other => {
                panic!("job {i} repro={plan:?}: expected AllStrategiesFailed, got {other:?}")
            }
        }
    }
    // Same engine shape minus the plan: the pool must be fully usable and
    // the previous faults must not leak into new worker threads.
    let clean = DcEngine::builder()
        .ladder(tiny_stages())
        .budget(SolveBudget::with_deadline(Duration::from_secs(30)))
        .threads(3)
        .build()
        .solve_batch(&circuits);
    for (i, result) in clean.into_iter().enumerate() {
        let sol = result.unwrap_or_else(|e| panic!("clean job {i} failed: {e}"));
        assert!(sol.stats.converged, "job {i}");
        assert!(sol.x.iter().all(|v| v.is_finite()), "job {i}");
    }
}

// --- property tests: certification & quarantine under injected corruption --

/// A stiff 100 Ω divider: the exact operating point is trivial, and any
/// state perturbation of ≥ 0.25 (volts or amps) drives the KCL residual at
/// least 2.5 mA past the certifier's rejection threshold.
fn stiff_divider() -> Circuit {
    rlpta_netlist::parse("div\nV1 in 0 2\nR1 in out 100\nR2 out 0 100\n").expect("valid netlist")
}

/// Diode transfer circuit + 9-point sweep used by the quarantine proptest.
fn sweep_fixture() -> (Circuit, DcSweep) {
    let c = rlpta_netlist::parse("t\nV1 in 0 0\nR1 in a 100\nD1 a 0 DX\n.model DX D(IS=1e-14)\n")
        .expect("valid netlist");
    let sweep = DcSweep::linear("V1", 0.0, 2.0, 0.25).expect("valid sweep spec");
    (c, sweep)
}

/// Clean (fault-free) serial reference sweep, computed once.
fn clean_sweep_reference() -> &'static SweepReport {
    static CLEAN: std::sync::OnceLock<SweepReport> = std::sync::OnceLock::new();
    CLEAN.get_or_init(|| {
        let (c, sweep) = sweep_fixture();
        let report = DcEngine::builder()
            .ladder(tiny_stages())
            .sweep_chunk(3)
            .build()
            .sweep(&c, &sweep)
            .expect("clean sweep");
        assert!(report.quarantined.is_empty(), "reference sweep is healthy");
        report
    })
}

proptest! {
    /// A converged point plus an injected state perturbation can never
    /// grade `Certified`: the independently re-evaluated residual must
    /// push the certificate to `Rejected`.
    #[test]
    fn certify_rejects_injected_residual_perturbations(
        node in 0usize..8,
        bump in 0.25f64..4.0,
    ) {
        let c = stiff_divider();
        let sol = DcEngine::builder().build().solve(&c).expect("clean divider solves");
        prop_assert!(
            sol.health.as_ref().map(|h| h.grade) == Some(HealthGrade::Certified),
            "clean solve must certify: {:?}", sol.health
        );

        let mut x = sol.x.clone();
        let idx = node % x.len();
        x[idx] += bump;
        let report = certify(&c, &x);
        prop_assert!(
            report.grade == HealthGrade::Rejected,
            "perturbing x[{idx}] by {bump} must reject, got {report:?}"
        );
        prop_assert!(report.residual_norm > 1e-3, "residual {report:?}");
    }

    /// NaN-stamped assembly can never certify: with a period-1 NaN stamp
    /// armed, the certifier's own re-assembly is poisoned. The stamp hook
    /// corrupts Jacobian conductances (not the residual vector), so the
    /// poison surfaces as a non-finite condition/pivot-growth estimate and
    /// the grade is demoted from `Certified`.
    #[test]
    fn certify_rejects_nan_stamped_assembly(seed in 0u64..1024) {
        let c = stiff_divider();
        let sol = DcEngine::builder().build().solve(&c).expect("clean divider solves");
        let plan = FaultPlan::seeded(seed).nan_stamps(1);
        plan.install();
        let report = certify(&c, &sol.x);
        FaultPlan::clear();
        prop_assert!(
            report.grade != HealthGrade::Certified,
            "NaN-stamped certification must not certify (repro={plan:?}), got {report:?}"
        );
        prop_assert!(
            report.cond_estimate.is_infinite() || report.pivot_growth.is_infinite()
                || !report.residual_norm.is_finite(),
            "poison left no trace in the report (repro={plan:?}): {report:?}"
        );
    }

    /// A `Certified` grade stays trustworthy when the solve itself ran
    /// under intermittent fault injection: re-evaluating the residual on a
    /// clean thread afterwards must agree with the certificate, and no
    /// `Rejected` solution may escape the engine.
    #[test]
    fn certified_grade_implies_small_residual_under_faults(
        seed in 0u64..1024,
        period in 2u64..8,
    ) {
        let c = rlpta_circuits::by_name("D10").expect("known benchmark").circuit;
        let plan = FaultPlan::seeded(seed).nan_stamps(period);
        let engine = DcEngine::builder()
            .ladder(tiny_stages())
            .budget(SolveBudget::with_deadline(Duration::from_secs(30)))
            .fault_plan(plan)
            .build();
        if let Ok(sol) = engine.solve(&c) {
            let health = sol.health.as_ref();
            prop_assert!(health.is_some(), "no health report (repro={plan:?})");
            let health = health.expect("checked above");
            prop_assert!(
                health.grade != HealthGrade::Rejected,
                "rejected solution escaped (repro={plan:?}): {health:?}"
            );
            if health.grade == HealthGrade::Certified {
                let resid = sol.residual_norm(&c);
                prop_assert!(
                    resid <= rlpta_core::certify::RESIDUAL_CERTIFIED,
                    "certified but clean residual is {resid:.3e} (repro={plan:?})"
                );
            }
        }
    }

    /// Quarantined sweeps degrade gracefully *and* deterministically: under
    /// an intermittent fault plan the pooled report is bit-identical to the
    /// serial one, quarantined + surviving indices partition the value list
    /// in order, and surviving points match the clean serial reference.
    #[test]
    fn quarantined_sweep_returns_ordered_partial_results(
        seed in 0u64..256,
        period in 2u64..6,
    ) {
        let (c, sweep) = sweep_fixture();
        let plan = FaultPlan::seeded(seed).singular_pivots(period);
        let run = |threads: usize| {
            DcEngine::builder()
                .ladder(tiny_stages())
                .budget(SolveBudget::with_deadline(Duration::from_secs(30)))
                .threads(threads)
                .sweep_chunk(3)
                .retries(1)
                .fault_plan(plan)
                .build()
                .sweep(&c, &sweep)
                .expect("sweep only errors on bad config")
        };
        let serial = run(1);
        let pooled = run(3);
        prop_assert!(
            serial == pooled,
            "faulted sweep not thread-invariant (repro={plan:?})"
        );

        let values = sweep.values();
        prop_assert!(
            serial.points.len() + serial.quarantined.len() == values.len(),
            "{} survivors + {} quarantined != {} values (repro={plan:?})",
            serial.points.len(), serial.quarantined.len(), values.len()
        );

        // Quarantine entries are ordered, value-consistent and record at
        // least one attempt (the engine ran with one retry).
        let mut prev = None;
        for q in &serial.quarantined {
            prop_assert!(
                prev.is_none_or(|p| q.index > p),
                "quarantine out of order at {q:?} (repro={plan:?})"
            );
            prop_assert!(q.index < values.len(), "repro={plan:?}: {q:?}");
            prop_assert!(q.value == values[q.index], "repro={plan:?}: {q:?}");
            prop_assert!(q.attempts >= 1, "repro={plan:?}: {q:?}");
            prop_assert!(!q.error.is_empty(), "repro={plan:?}: {q:?}");
            prev = Some(q.index);
        }

        // Surviving points are exactly the value list minus the quarantined
        // indices, in sweep order — equal to what a serial run keeps.
        let dropped: std::collections::BTreeSet<usize> =
            serial.quarantined.iter().map(|q| q.index).collect();
        let expected: Vec<f64> = values
            .iter()
            .enumerate()
            .filter(|(i, _)| !dropped.contains(i))
            .map(|(_, v)| *v)
            .collect();
        let got: Vec<f64> = serial.points.iter().map(|p| p.value).collect();
        prop_assert!(got == expected, "survivor order (repro={plan:?}): {got:?} != {expected:?}");

        // Each survivor lands on the same operating point as the clean
        // fault-free reference. Converged Newton leaves at most ~1e-6 A of
        // residual against ≥ 10 mS of node conductance, so 1e-3 V bounds
        // the spread between two legitimate converged answers.
        let clean = clean_sweep_reference();
        let mut survivors = serial.points.iter();
        for (i, clean_point) in clean.points.iter().enumerate() {
            if dropped.contains(&i) {
                continue;
            }
            let p = survivors.next().expect("survivor count checked above");
            prop_assert!(p.solution.stats.converged, "point {i} (repro={plan:?})");
            let health = p.solution.health.as_ref();
            prop_assert!(health.is_some(), "point {i} lacks health (repro={plan:?})");
            prop_assert!(
                health.expect("checked above").grade != HealthGrade::Rejected,
                "point {i} rejected (repro={plan:?})"
            );
            for (a, b) in p.solution.x.iter().zip(&clean_point.solution.x) {
                prop_assert!(
                    (a - b).abs() < 1e-3,
                    "point {i} diverged from clean reference (repro={plan:?})"
                );
            }
        }
    }
}
