//! Chaos suite: deterministic fault injection against the full escalation
//! ladder.
//!
//! Every run in this file executes with a [`FaultPlan`] installed — singular
//! pivots in the sparse LU, NaN device stamps, or an oscillating residual —
//! and must end in a *structured* outcome: either a finite solution (the
//! solver rode out an intermittent fault) or a typed [`SolveError`]. Zero
//! panics, zero hangs, and on total failure a populated per-stage attempt
//! trail.
//!
//! Requires `--features faults`.

use rlpta_core::{
    DcEngine, FaultPlan, GminStepping, LadderStage, NewtonConfig, NewtonHomotopy, PtaConfig,
    RobustDcSolver, SolveBudget, SolveError, SourceStepping,
};
use rlpta_mna::Circuit;
use std::time::Duration;

/// Three circuit families: diode network, BJT mirror bank, MOS amplifier.
fn chaos_circuits() -> Vec<(&'static str, Circuit)> {
    ["D10", "gm1", "mosamp"]
        .iter()
        .map(|n| {
            (
                *n,
                rlpta_circuits::by_name(n).expect("known benchmark").circuit,
            )
        })
        .collect()
}

/// A deliberately small ladder so a run where *every* stage fails still
/// finishes in milliseconds and produces a full trail.
fn tiny_stages() -> Vec<LadderStage> {
    let newton = NewtonConfig {
        max_iterations: 10,
        ..NewtonConfig::default()
    };
    vec![
        LadderStage::DampedNewton(newton.clone()),
        LadderStage::GminStepping(GminStepping {
            newton: newton.clone(),
            ..GminStepping::default()
        }),
        LadderStage::SourceStepping(SourceStepping {
            min_increment: 0.05,
            newton: newton.clone(),
            ..SourceStepping::default()
        }),
        LadderStage::Cepta(PtaConfig {
            max_steps: 15,
            newton: newton.clone(),
            ..PtaConfig::default()
        }),
        LadderStage::Dpta(PtaConfig {
            max_steps: 15,
            newton: newton.clone(),
            ..PtaConfig::default()
        }),
        LadderStage::NewtonHomotopy(NewtonHomotopy {
            min_step: 0.099,
            newton,
            ..NewtonHomotopy::default()
        }),
    ]
}

/// The tiny ladder on a serial engine, with a wall-clock backstop against
/// hangs; generous enough that the tiny stages finish long before it trips.
fn tiny_engine() -> DcEngine {
    DcEngine::builder()
        .ladder(tiny_stages())
        .budget(SolveBudget::with_deadline(Duration::from_secs(30)))
        .build()
}

const STAGE_NAMES: [&str; 6] = [
    "newton",
    "gmin-stepping",
    "source-stepping",
    "cepta",
    "dpta",
    "newton-homotopy",
];

fn constant_fault_plans(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("singular-pivot", FaultPlan::seeded(seed).singular_pivots(1)),
        ("nan-stamp", FaultPlan::seeded(seed).nan_stamps(1)),
        (
            "oscillating-residual",
            FaultPlan::seeded(seed).oscillating_residual(10.0),
        ),
    ]
}

/// ≥ 50 seeded runs (3 fault kinds × 3 circuit families × 6 seeds = 54),
/// each under a *constant* fault no strategy can survive: every run must
/// return a structured error carrying the ordered per-stage attempt trail.
#[test]
fn constant_faults_produce_full_attempt_trails() {
    let circuits = chaos_circuits();
    let solver = tiny_engine();
    let mut runs = 0usize;
    for seed in 0..6u64 {
        for (fault_name, plan) in constant_fault_plans(seed) {
            for (circ_name, circuit) in &circuits {
                plan.install();
                let result = solver.solve(circuit);
                FaultPlan::clear();
                runs += 1;
                let ctx = format!("fault={fault_name} circuit={circ_name} seed={seed}");
                match result {
                    Err(SolveError::AllStrategiesFailed { attempts }) => {
                        assert_eq!(attempts.len(), STAGE_NAMES.len(), "{ctx}");
                        for (attempt, expected) in attempts.iter().zip(STAGE_NAMES) {
                            assert_eq!(attempt.strategy, expected, "{ctx}");
                            assert!(
                                matches!(
                                    *attempt.error,
                                    SolveError::NonConvergent { .. }
                                        | SolveError::Singular(_)
                                        | SolveError::NonFinite { .. }
                                ),
                                "{ctx}: unexpected stage error {:?}",
                                attempt.error
                            );
                        }
                    }
                    other => panic!("{ctx}: expected AllStrategiesFailed, got {other:?}"),
                }
            }
        }
    }
    assert!(runs >= 50, "chaos coverage: {runs} runs");
}

/// Intermittent faults (period > 1): the solver may recover or fail, but the
/// outcome must always be structured — a finite solution or a typed error —
/// and the run must respect the wall-clock backstop.
#[test]
fn intermittent_faults_never_panic_or_hang() {
    let circuits = chaos_circuits();
    let solver = tiny_engine();
    let mut runs = 0usize;
    for seed in 0..6u64 {
        let period = 2 + seed % 5;
        let plans = vec![
            FaultPlan::seeded(seed).singular_pivots(period),
            FaultPlan::seeded(seed).nan_stamps(period * 3),
            FaultPlan::seeded(seed)
                .singular_pivots(period * 7)
                .nan_stamps(period * 5)
                .oscillating_residual(1e-9),
        ];
        for plan in plans {
            for (circ_name, circuit) in &circuits {
                plan.install();
                let result = solver.solve(circuit);
                FaultPlan::clear();
                runs += 1;
                let ctx = format!("circuit={circ_name} seed={seed} period={period}");
                match result {
                    Ok(sol) => {
                        assert!(
                            sol.x.iter().all(|v| v.is_finite()),
                            "{ctx}: poison leaked into a returned solution"
                        );
                        assert!(sol.stats.converged, "{ctx}");
                    }
                    Err(
                        SolveError::AllStrategiesFailed { .. }
                        | SolveError::BudgetExhausted { .. }
                        | SolveError::NonConvergent { .. },
                    ) => {}
                    Err(other) => panic!("{ctx}: unstructured failure {other:?}"),
                }
            }
        }
    }
    assert!(runs >= 50, "chaos coverage: {runs} runs");
}

/// Faults must not outlive their plan: after `clear()` the same solver and
/// circuit succeed normally.
#[test]
fn cleared_plan_restores_clean_behavior() {
    let c = rlpta_circuits::by_name("D10").expect("known benchmark").circuit;
    let solver = RobustDcSolver::default();

    FaultPlan::seeded(7).singular_pivots(1).install();
    let poisoned = solver.solve(&c);
    FaultPlan::clear();
    assert!(poisoned.is_err(), "constant singular pivots must fail");

    let clean = solver.solve(&c).expect("clean solve after clear()");
    assert!(clean.stats.converged);
    assert!(clean.x.iter().all(|v| v.is_finite()));
}

/// Fault injection inside *pooled* workers: [`FaultPlan`] state is
/// thread-local, so the engine must re-install the plan inside every job.
/// Each faulted job must surface a structured per-job error — no panic
/// escapes, no slot is lost, and the pool is not poisoned for clean work
/// afterwards.
#[test]
fn pooled_workers_surface_faults_as_structured_errors() {
    let circuits: Vec<Circuit> = chaos_circuits().into_iter().map(|(_, c)| c).collect();
    let faulted = DcEngine::builder()
        .ladder(tiny_stages())
        .budget(SolveBudget::with_deadline(Duration::from_secs(30)))
        .threads(3)
        .fault_plan(FaultPlan::seeded(11).singular_pivots(1))
        .build();
    let results = faulted.solve_batch(&circuits);
    assert_eq!(results.len(), circuits.len(), "one result slot per job");
    for (i, result) in results.iter().enumerate() {
        match result {
            Err(SolveError::AllStrategiesFailed { attempts }) => {
                assert_eq!(attempts.len(), STAGE_NAMES.len(), "job {i}");
                for (attempt, expected) in attempts.iter().zip(STAGE_NAMES) {
                    assert_eq!(attempt.strategy, expected, "job {i}");
                }
            }
            other => panic!("job {i}: expected AllStrategiesFailed, got {other:?}"),
        }
    }
    // Same engine shape minus the plan: the pool must be fully usable and
    // the previous faults must not leak into new worker threads.
    let clean = DcEngine::builder()
        .ladder(tiny_stages())
        .budget(SolveBudget::with_deadline(Duration::from_secs(30)))
        .threads(3)
        .build()
        .solve_batch(&circuits);
    for (i, result) in clean.into_iter().enumerate() {
        let sol = result.unwrap_or_else(|e| panic!("clean job {i} failed: {e}"));
        assert!(sol.stats.converged, "job {i}");
        assert!(sol.x.iter().all(|v| v.is_finite()), "job {i}");
    }
}
