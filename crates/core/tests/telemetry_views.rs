//! Integration tests for the telemetry layer: every classic report type
//! (`SolveStats`, `TraceEntry`, `AttemptReport`, `SweepReport`) is a
//! derived fold/filter view over the engine's event stream, and the JSONL
//! stream round-trips losslessly.

use rlpta_core::telemetry::{fold_attempts, fold_stats, fold_sweep_stats, fold_trace};
use rlpta_core::{
    Collector, DcEngine, DcSweep, EngineConfig, Event, JsonlSink, LadderStage, NewtonConfig,
    PtaConfig, PtaKind, PtaSolver, SimpleStepping, SolveBudget, SolveError, TraceController,
};
use std::sync::Arc;

/// The acceptance pin: for **every** Fig. 5 corpus circuit, folding the
/// event stream reproduces the solver's returned counters exactly —
/// convergent or not. A per-run NR cap keeps the corpus sweep fast in
/// debug builds without touching the equivalence question.
#[test]
fn fig5_stats_are_derived_views_of_the_event_stream() {
    for bench in rlpta_circuits::fig5() {
        let collector = Arc::new(Collector::new());
        let engine = DcEngine::builder()
            .kind(PtaKind::cepta())
            .pta_config(EngineConfig::experiment().pta())
            .budget(SolveBudget::UNLIMITED.nr_iterations(5_000))
            .telemetry(collector.clone())
            .build();
        let stats = match engine.solve(&bench.circuit) {
            Ok(sol) => sol.stats,
            Err(
                SolveError::NonConvergent { stats } | SolveError::BudgetExhausted { stats, .. },
            ) => stats,
            Err(e) => panic!("{}: structural failure: {e}", bench.name),
        };
        assert_eq!(
            fold_stats(&collector.events()),
            stats,
            "{}: folded view diverges from returned stats",
            bench.name
        );
    }
}

/// The escalation ladder's attempt trail is reconstructible from
/// `LadderAttempt` events: same strategies, same errors, same per-stage
/// work.
#[test]
fn ladder_attempt_trail_is_a_derived_view() {
    let c = rlpta_circuits::by_name("SCHMITT")
        .expect("known benchmark")
        .circuit;
    // A ladder guaranteed to fail every rung quickly: Newton starved of
    // iterations, CEPTA starved of steps.
    let stages = vec![
        LadderStage::DampedNewton(NewtonConfig {
            max_iterations: 3,
            ..NewtonConfig::default()
        }),
        LadderStage::Cepta(PtaConfig {
            max_steps: 2,
            ..PtaConfig::default()
        }),
    ];
    let collector = Arc::new(Collector::new());
    let engine = DcEngine::builder()
        .ladder(stages)
        .telemetry(collector.clone())
        .build();
    let attempts = match engine.solve(&c) {
        Err(SolveError::AllStrategiesFailed { attempts }) => attempts,
        other => panic!("expected total ladder failure, got {other:?}"),
    };
    let views = fold_attempts(&collector.events());
    assert_eq!(views.len(), attempts.len());
    for (v, a) in views.iter().zip(&attempts) {
        assert_eq!(v.strategy, a.strategy);
        assert_eq!(v.error, a.error.to_string());
        assert_eq!(v.stats, a.stats);
    }
}

/// `fold_trace` over engine events reproduces what an explicit
/// `TraceController` wrapper records on the identical serial run.
#[test]
fn step_trace_is_a_derived_view() {
    let c = rlpta_netlist::parse(
        "t\nV1 in 0 5\nR1 in out 1k\nD1 out 0 DX\n.model DX D(IS=1e-14)\n",
    )
    .expect("parses");
    // Reference: the wrapper records every observation/decision pair.
    let mut solver = PtaSolver::with_config(
        PtaKind::dpta(),
        TraceController::new(SimpleStepping::default()),
        PtaConfig::default(),
    );
    solver.solve(&c).expect("solves");
    let reference = solver.controller_mut().entries().to_vec();
    assert!(!reference.is_empty());
    // Same run through the engine, reconstructed from `PtaStep` events.
    let collector = Arc::new(Collector::new());
    let engine = DcEngine::builder()
        .kind(PtaKind::dpta())
        .telemetry(collector.clone())
        .build();
    engine.solve(&c).expect("solves");
    assert_eq!(fold_trace(&collector.events()), reference);
}

/// A sweep's aggregate counters fold back out of its `SweepPoint` events —
/// chunked and parallel.
#[test]
fn sweep_stats_are_a_derived_view() {
    let c = rlpta_netlist::parse(
        "t\nV1 in 0 0\nR1 in a 100\nD1 a 0 DX\n.model DX D(IS=1e-14)\n",
    )
    .expect("parses");
    let values: Vec<f64> = (0..9).map(|i| i as f64 * 0.5).collect();
    let sweep = DcSweep::new("V1", values).expect("valid sweep");
    let collector = Arc::new(Collector::new());
    let engine = DcEngine::builder()
        .threads(3)
        .sweep_chunk(3)
        .telemetry(collector.clone())
        .build();
    let report = engine.sweep(&c, &sweep).expect("sweeps");
    assert_eq!(fold_sweep_stats(&collector.events()), report.stats);
}

/// The `--trace-jsonl` path end to end: an engine run streamed through
/// `JsonlSink` parses back line by line, re-serializes bit-identically,
/// and still folds to the solver's counters.
#[test]
fn jsonl_stream_round_trips_through_the_engine() {
    let path = std::env::temp_dir().join("rlpta-telemetry-roundtrip.jsonl");
    let c = rlpta_netlist::parse(
        "t\nV1 in 0 5\nR1 in out 1k\nD1 out 0 DX\n.model DX D(IS=1e-14)\n",
    )
    .expect("parses");
    let stats = {
        let sink = Arc::new(JsonlSink::create(&path).expect("creates trace file"));
        let engine = DcEngine::builder()
            .kind(PtaKind::cepta())
            .telemetry(sink)
            .build();
        engine.solve(&c).expect("solves").stats
    };
    let text = std::fs::read_to_string(&path).expect("reads back");
    std::fs::remove_file(&path).ok();
    let events: Vec<Event> = text
        .lines()
        .map(|l| Event::parse_json(l).expect("every line parses"))
        .collect();
    assert!(!events.is_empty());
    for (line, e) in text.lines().zip(&events) {
        assert_eq!(e.to_json(), line, "parse/serialize must be bit-stable");
    }
    assert_eq!(fold_stats(&events), stats);
}
