//! Property-based tests for the streaming histogram math behind
//! `MetricsRegistry`: percentile monotonicity, exact count/sum/min/max
//! preservation under merge, and merge associativity/commutativity — the
//! invariants that make worker-shard aggregation safe.

use proptest::prelude::*;
use rlpta_core::Histogram;

fn hist_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for v in values {
        h.record(*v);
    }
    h
}

proptest! {
    /// p50 ≤ p90 ≤ p99, all pinned inside the observed [min, max], with
    /// the extremes exact at q = 0 and q = 1.
    #[test]
    fn percentiles_are_monotone_and_bounded(
        values in proptest::collection::vec(0u64..2_000_000_000, 1..200),
    ) {
        let h = hist_of(&values);
        let (p50, p90, p99) = (h.percentile(0.5), h.percentile(0.9), h.percentile(0.99));
        prop_assert!(h.min() <= p50, "{} > p50 {p50}", h.min());
        prop_assert!(p50 <= p90 && p90 <= p99, "p50 {p50} p90 {p90} p99 {p99}");
        prop_assert!(p99 <= h.max(), "p99 {p99} > {}", h.max());
        // q = 0 lands in the min's bucket (≤ one bucket of overshoot);
        // q = 1 is exact by the [min, max] clamp.
        let p0 = h.percentile(0.0);
        prop_assert!(p0 as f64 <= h.min() as f64 * 1.125 + 1.0, "p0 {p0} vs min {}", h.min());
        prop_assert_eq!(h.percentile(1.0), *values.iter().max().expect("non-empty"));
    }

    /// Percentile estimates carry at most the bucket's relative error:
    /// the log bucketing uses 8 sub-buckets per octave, so ≤ 12.5 %
    /// against the exact order statistic (exact below 16).
    #[test]
    fn percentiles_track_exact_order_statistics(
        values in proptest::collection::vec(0u64..1_000_000_000, 1..100),
        q in 0.0f64..1.0,
    ) {
        let h = hist_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];
        let got = h.percentile(q);
        prop_assert!(got >= exact, "estimate {got} below exact {exact}");
        prop_assert!(
            got as f64 <= exact as f64 * 1.125 + 1.0,
            "estimate {got} overshoots exact {exact} beyond one bucket"
        );
    }

    /// Splitting a sample arbitrarily into two shards and merging them
    /// reproduces the unsharded histogram exactly — bucket populations,
    /// count, sum, min, max, every percentile.
    #[test]
    fn merge_is_exact_and_commutative(
        values in proptest::collection::vec(0u64..2_000_000_000, 0..200),
        mask in proptest::collection::vec(any::<bool>(), 0..200),
    ) {
        let whole = hist_of(&values);
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for (i, v) in values.iter().enumerate() {
            if mask.get(i).copied().unwrap_or(false) {
                a.record(*v);
            } else {
                b.record(*v);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba, "merge must be commutative");
        prop_assert_eq!(&ab, &whole, "shard merge must equal the unsharded fold");
        prop_assert_eq!(ab.count(), values.len() as u64);
        prop_assert_eq!(ab.sum(), values.iter().sum::<u64>());
    }

    /// Three-way shard merges associate: (a ∪ b) ∪ c == a ∪ (b ∪ c).
    #[test]
    fn merge_is_associative(
        a_vals in proptest::collection::vec(0u64..1_000_000_000, 0..60),
        b_vals in proptest::collection::vec(0u64..1_000_000_000, 0..60),
        c_vals in proptest::collection::vec(0u64..1_000_000_000, 0..60),
    ) {
        let (a, b, c) = (hist_of(&a_vals), hist_of(&b_vals), hist_of(&c_vals));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }
}
