//! Benchmark suites: the named circuits of Tables 2/3 and Fig. 5, plus the
//! 43-circuit training corpus for the IPP stage.

use crate::families as fam;
use rlpta_mna::{Circuit, CircuitFeatures};

/// One named benchmark circuit.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// The paper's circuit name (row label in the tables).
    pub name: String,
    /// BJT-type flag (the τ of Eq. 4); `false` = MOS type.
    pub is_bjt: bool,
    /// The synthesized circuit.
    pub circuit: Circuit,
}

impl Benchmark {
    fn new(name: &str, circuit: Circuit) -> Self {
        let is_bjt = CircuitFeatures::extract(&circuit).is_bjt;
        Self {
            name: name.to_owned(),
            is_bjt,
            circuit,
        }
    }

    /// The paper's seven netlist statistics for this circuit.
    pub fn features(&self) -> CircuitFeatures {
        CircuitFeatures::extract(&self.circuit)
    }
}

/// Builds a named benchmark, or `None` for unknown names.
///
/// All circuit names from Tables 2 and 3 of the paper are recognized
/// (case-sensitive, as printed).
pub fn by_name(name: &str) -> Option<Benchmark> {
    let c = match name {
        // --- Table 2 test circuits ---
        "Adding" => fam::mos_adder("Adding", 1),
        "MOSBandgap" => fam::bandgap("MOSBandgap", 4),
        "6stageLimAmp" => fam::limiting_amplifier("6stageLimAmp", 6),
        "TRCKTorig" => fam::wilson_ota("TRCKTorig"),
        "UA709" => fam::bjt_opamp("UA709", 2, Some(68.0), 8.2),
        "UA733" => fam::limiting_amplifier("UA733", 3),
        "D22" => fam::diode_network("D22", 11, 2),
        // --- Table 3 / Fig. 5 circuits ---
        "astabl" => fam::bjt_astable("astabl"),
        "bias" => fam::bjt_bias_chain("bias", 6, 8.2),
        "latch" => fam::bjt_latch("latch", 10.0, 1.0),
        "nagle" => fam::bjt_opamp("nagle", 2, Some(22.0), 6.8),
        "rca" => fam::bjt_opamp("rca", 2, Some(120.0), 12.0),
        "ab_ac" => fam::class_ab("ab_ac", 1, 33.0),
        "ab_integ" => fam::class_ab("ab_integ", 2, 22.0),
        "ab_opamp" => fam::class_ab("ab_opamp", 2, 47.0),
        "cram" => fam::mos_ram_cell("cram"),
        "e1480" => fam::bjt_opamp("e1480", 4, Some(33.0), 5.6),
        "gm6" => fam::bjt_current_mirrors("gm6", 6),
        "mosrect" => fam::mos_rectifier("mosrect"),
        "schmitfast" => fam::bjt_schmitt("schmitfast", 8.2),
        "slowlatch" => fam::bjt_latch("slowlatch", 4.7, 2.2),
        "fadd32" => fam::mos_adder("fadd32", 16),
        "voter25" => fam::mos_voter("voter25", 25),
        "gm1" => fam::bjt_current_mirrors("gm1", 1),
        "gm17" => fam::bjt_current_mirrors("gm17", 17),
        "todd3" => fam::bjt_opamp("todd3", 3, Some(15.0), 4.7),
        "D10" => fam::diode_network("D10", 5, 2),
        "D11" => fam::diode_network("D11", 11, 1),
        "DCOSC" => fam::bjt_dc_oscillator("DCOSC"),
        "mosamp" => fam::mos_amplifier("mosamp", 3),
        "RCA3040" => fam::bjt_opamp("RCA3040", 2, Some(150.0), 10.0),
        "SCHMITT" => fam::bjt_schmitt("SCHMITT", 15.0),
        "TADEGLOW" => fam::glow_discharge("TADEGLOW", 8),
        "THM5" => fam::bjt_opamp("THM5", 3, Some(12.0), 4.7),
        "TRISTABLE" => fam::bjt_schmitt("TRISTABLE", 6.8),
        "UA727" => fam::bjt_opamp("UA727", 3, Some(82.0), 9.1),
        "MOSMEM" => fam::mos_memory("MOSMEM", 6),
        _ => return None,
    };
    Some(Benchmark::new(name, c))
}

/// The seven held-out test circuits of Table 2, in row order.
pub fn table2() -> Vec<Benchmark> {
    [
        "Adding",
        "MOSBandgap",
        "6stageLimAmp",
        "TRCKTorig",
        "UA709",
        "UA733",
        "D22",
    ]
    .iter()
    .map(|n| by_name(n).expect("table2 names are known"))
    .collect()
}

/// The 33 circuits of Table 3, in row order.
pub fn table3() -> Vec<Benchmark> {
    [
        "astabl",
        "bias",
        "latch",
        "nagle",
        "rca",
        "ab_ac",
        "ab_integ",
        "ab_opamp",
        "cram",
        "e1480",
        "gm6",
        "mosrect",
        "schmitfast",
        "slowlatch",
        "fadd32",
        "voter25",
        "gm1",
        "gm17",
        "todd3",
        "6stageLimAmp",
        "D10",
        "D11",
        "DCOSC",
        "mosamp",
        "MOSBandgap",
        "RCA3040",
        "SCHMITT",
        "TADEGLOW",
        "THM5",
        "TRISTABLE",
        "UA727",
        "UA733",
        "MOSMEM",
    ]
    .iter()
    .map(|n| by_name(n).expect("table3 names are known"))
    .collect()
}

/// The 27 circuits of Fig. 5 (the figure does not label its bars; we use the
/// first 27 rows of Table 3, which the text says they are drawn from).
pub fn fig5() -> Vec<Benchmark> {
    table3().into_iter().take(27).collect()
}

/// The paper's 43-circuit canonical training set, substituted by parametric
/// family sweeps (deterministic; no RNG needed).
pub fn training_corpus() -> Vec<Benchmark> {
    let mut out = Vec::with_capacity(43);
    let mut push = |name: String, c: Circuit| out.push(Benchmark::new(&name, c));

    for (i, stages) in [2usize, 4, 7].iter().enumerate() {
        push(
            format!("train_bias{i}"),
            fam::bjt_bias_chain(&format!("train_bias{i}"), *stages, 6.0 + *stages as f64),
        );
    }
    for (i, m) in [2usize, 4, 12].iter().enumerate() {
        push(
            format!("train_gm{i}"),
            fam::bjt_current_mirrors(&format!("train_gm{i}"), *m),
        );
    }
    for (i, (st, fb)) in [
        (1, None),
        (2, Some(100.0)),
        (3, Some(47.0)),
        (4, Some(68.0)),
    ]
    .iter()
    .enumerate()
    {
        push(
            format!("train_amp{i}"),
            fam::bjt_amplifier(&format!("train_amp{i}"), *st, *fb),
        );
    }
    for (i, (cp, rc)) in [(15.0, 1.0), (8.0, 1.5), (5.6, 2.0)].iter().enumerate() {
        push(
            format!("train_latch{i}"),
            fam::bjt_latch(&format!("train_latch{i}"), *cp, *rc),
        );
    }
    for (i, fb) in [18.0, 10.0, 7.5].iter().enumerate() {
        push(
            format!("train_schmitt{i}"),
            fam::bjt_schmitt(&format!("train_schmitt{i}"), *fb),
        );
    }
    push("train_astable".into(), fam::bjt_astable("train_astable"));
    push("train_dcosc".into(), fam::bjt_dc_oscillator("train_dcosc"));
    for (i, (s, a)) in [(3usize, 1usize), (6, 2), (9, 1)].iter().enumerate() {
        push(
            format!("train_diode{i}"),
            fam::diode_network(&format!("train_diode{i}"), *s, *a),
        );
    }
    for (i, st) in [2usize, 5].iter().enumerate() {
        push(
            format!("train_inv{i}"),
            fam::mos_inverter_chain(&format!("train_inv{i}"), *st),
        );
    }
    for (i, bits) in [1usize, 3].iter().enumerate() {
        push(
            format!("train_add{i}"),
            fam::mos_adder(&format!("train_add{i}"), *bits),
        );
    }
    for (i, leaves) in [3usize, 9].iter().enumerate() {
        push(
            format!("train_vote{i}"),
            fam::mos_voter(&format!("train_vote{i}"), *leaves),
        );
    }
    push("train_ram".into(), fam::mos_ram_cell("train_ram"));
    push("train_mem".into(), fam::mos_memory("train_mem", 2));
    push("train_rect".into(), fam::mos_rectifier("train_rect"));
    for (i, st) in [1usize, 3].iter().enumerate() {
        push(
            format!("train_mamp{i}"),
            fam::mos_amplifier(&format!("train_mamp{i}"), *st),
        );
    }
    for (i, legs) in [0usize, 2].iter().enumerate() {
        push(
            format!("train_bg{i}"),
            fam::bandgap(&format!("train_bg{i}"), *legs),
        );
    }
    for (i, (st, fb)) in [(1usize, 150.0), (2, 56.0)].iter().enumerate() {
        push(
            format!("train_ab{i}"),
            fam::class_ab(&format!("train_ab{i}"), *st, *fb),
        );
    }
    for (i, (st, fb, tail)) in [
        (1usize, None, 15.0),
        (3, Some(100.0), 8.2),
        (2, Some(39.0), 6.8),
    ]
    .iter()
    .enumerate()
    {
        push(
            format!("train_op{i}"),
            fam::bjt_opamp(&format!("train_op{i}"), *st, *fb, *tail),
        );
    }
    for (i, st) in [2usize, 4].iter().enumerate() {
        push(
            format!("train_lim{i}"),
            fam::limiting_amplifier(&format!("train_lim{i}"), *st),
        );
    }
    push("train_glow".into(), fam::glow_discharge("train_glow", 6));
    push("train_ota".into(), fam::wilson_ota("train_ota"));

    assert_eq!(out.len(), 43, "the paper's training corpus has 43 circuits");
    out
}

/// The 43 training circuits used for Table 2's offline stage — alias of
/// [`training_corpus`] under the name the experiment harness uses.
pub fn table2_training() -> Vec<Benchmark> {
    training_corpus()
}

/// A randomized training corpus: `n` circuits drawn from the parametric
/// families with seeded-RNG component values. Complements the fixed
/// [`training_corpus`] when experiments need fresh, unseen-but-similar
/// circuits (e.g. GP generalization studies).
pub fn training_corpus_seeded(n: usize, seed: u64) -> Vec<Benchmark> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let name = format!("rand{i}");
        let c = match rng.gen_range(0..10u32) {
            0 => fam::bjt_bias_chain(&name, rng.gen_range(2..8), rng.gen_range(3.0..20.0)),
            1 => fam::bjt_current_mirrors(&name, rng.gen_range(1..10)),
            2 => {
                let fb = if rng.gen_bool(0.6) {
                    Some(rng.gen_range(20.0..200.0))
                } else {
                    None
                };
                fam::bjt_amplifier(&name, rng.gen_range(1..5), fb)
            }
            3 => fam::bjt_latch(&name, rng.gen_range(4.0..20.0), rng.gen_range(0.8..2.5)),
            4 => fam::bjt_schmitt(&name, rng.gen_range(6.0..20.0)),
            5 => fam::diode_network(&name, rng.gen_range(2..10), rng.gen_range(1..4)),
            6 => fam::mos_inverter_chain(&name, rng.gen_range(2..8)),
            7 => fam::mos_amplifier(&name, rng.gen_range(1..5)),
            8 => fam::class_ab(&name, rng.gen_range(1..3), rng.gen_range(20.0..150.0)),
            _ => fam::bjt_opamp(
                &name,
                rng.gen_range(1..5),
                Some(rng.gen_range(30.0..250.0)),
                rng.gen_range(4.0..16.0),
            ),
        };
        out.push(Benchmark::new(&name, c));
    }
    out
}

/// A stress suite of pathologically hard DC problems beyond the paper's
/// tables: ring-oscillator metastability, deep-saturation TTL, Darlington
/// sensitivity, ECL and narrow-bias analog blocks. Used by the `stress`
/// experiment binary.
pub fn stress() -> Vec<Benchmark> {
    vec![
        Benchmark::new("ring3", fam::ring_oscillator("ring3", 3)),
        Benchmark::new("ring5", fam::ring_oscillator("ring5", 5)),
        Benchmark::new("ring9", fam::ring_oscillator("ring9", 9)),
        Benchmark::new("darlington", fam::darlington("darlington")),
        Benchmark::new("cascode", fam::cascode("cascode")),
        Benchmark::new("ecl_gate", fam::ecl_gate("ecl_gate")),
        Benchmark::new("ttl_nand", fam::ttl_gate("ttl_nand")),
        Benchmark::new("ws_mirror", fam::wide_swing_mirror("ws_mirror")),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn table2_has_seven_rows() {
        let t = table2();
        assert_eq!(t.len(), 7);
        assert_eq!(t[0].name, "Adding");
        assert!(!t[0].is_bjt, "Adding is a MOS circuit");
        assert!(t[4].is_bjt, "UA709 is a BJT circuit");
    }

    #[test]
    fn table3_has_thirty_three_unique_rows() {
        let t = table3();
        assert_eq!(t.len(), 33);
        let names: HashSet<_> = t.iter().map(|b| b.name.as_str()).collect();
        assert_eq!(names.len(), 33);
    }

    #[test]
    fn fig5_is_a_27_circuit_prefix() {
        let f = fig5();
        assert_eq!(f.len(), 27);
        assert_eq!(f[0].name, "astabl");
    }

    #[test]
    fn training_corpus_is_43_and_diverse() {
        let t = training_corpus();
        assert_eq!(t.len(), 43);
        let bjt = t.iter().filter(|b| b.is_bjt).count();
        let mos = t.len() - bjt;
        assert!(
            bjt >= 10 && mos >= 10,
            "both types represented: {bjt}/{mos}"
        );
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(by_name("not-a-circuit").is_none());
    }

    #[test]
    fn features_accessor_matches_flag() {
        let b = by_name("cram").unwrap();
        assert_eq!(b.features().is_bjt, b.is_bjt);
    }

    #[test]
    fn seeded_corpus_is_deterministic_and_diverse() {
        let a = training_corpus_seeded(20, 99);
        let b = training_corpus_seeded(20, 99);
        assert_eq!(a.len(), 20);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.circuit.dim(), y.circuit.dim());
        }
        let c = training_corpus_seeded(20, 100);
        // A different seed changes at least some circuits.
        let same = a
            .iter()
            .zip(&c)
            .filter(|(x, y)| x.circuit.dim() == y.circuit.dim())
            .count();
        assert!(same < 20, "different seeds must differ");
    }

    #[test]
    fn seeded_corpus_circuits_are_wellformed() {
        for b in training_corpus_seeded(12, 5) {
            assert!(b.circuit.is_nonlinear(), "{}", b.name);
            assert!(b.circuit.num_nodes() >= 2, "{}", b.name);
        }
    }

    #[test]
    fn mosmem_is_the_largest_bistable() {
        let m = by_name("MOSMEM").unwrap();
        assert!(m.features().num_mosfets >= 36, "6 cells à 6 transistors");
    }
}
