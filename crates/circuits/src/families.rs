//! Parametric circuit-family generators.
//!
//! Every generator returns a ready-to-solve [`Circuit`]; the netlist text is
//! produced programmatically and run through the full parser, so these
//! circuits exercise the exact same code path as user decks.

use rlpta_mna::Circuit;
use rlpta_netlist::parse;

/// Standard NPN/PNP/diode/MOS model cards shared by the generators.
const MODELS: &str = "\
.model QN NPN(IS=1e-15 BF=120 BR=2)
.model QP PNP(IS=1e-15 BF=60 BR=2)
.model DX D(IS=1e-14 N=1.2)
.model NM NMOS(VTO=0.9 KP=6e-5 LAMBDA=0.02)
.model PM PMOS(VTO=-0.9 KP=3e-5 LAMBDA=0.02)
";

fn build(name: &str, body: String) -> Circuit {
    let deck = format!("{name}\n{body}\n{MODELS}\n.end\n");
    parse(&deck).unwrap_or_else(|e| panic!("generator `{name}` produced a bad deck: {e}\n{deck}"))
}

/// A chain of diode-connected BJTs biased through a resistor ladder — the
/// `bias`/`gm1`-style easy circuits.
pub fn bjt_bias_chain(name: &str, stages: usize, r_kohm: f64) -> Circuit {
    assert!(stages >= 1, "need at least one stage");
    let mut b = String::from("V1 vcc 0 12\n");
    for i in 0..stages {
        b += &format!("R{i} vcc n{i} {r_kohm}k\n");
        b += &format!("Q{i} n{i} n{i} 0 QN\n");
        if i > 0 {
            b += &format!("RX{i} n{} n{i} {}k\n", i - 1, r_kohm * 2.0);
        }
    }
    build(name, b)
}

/// A stack of current mirrors (`gm6`/`gm17`-style): reference leg plus
/// mirrored output legs with emitter degeneration.
pub fn bjt_current_mirrors(name: &str, mirrors: usize) -> Circuit {
    assert!(mirrors >= 1, "need at least one mirror");
    let mut b = String::from("V1 vcc 0 10\nRREF vcc bref 22k\nQREF bref bref 0 QN\n");
    for i in 0..mirrors {
        b += &format!("RO{i} vcc c{i} {}k\n", 3 + i);
        b += &format!("QM{i} c{i} bref e{i} QN\n");
        b += &format!("RE{i} e{i} 0 {}\n", 100 * (i + 1));
    }
    build(name, b)
}

/// DC-coupled cascade of common-emitter stages with optional global
/// feedback; low `feedback_kohm` means strong feedback → stiff system.
pub fn bjt_amplifier(name: &str, stages: usize, feedback_kohm: Option<f64>) -> Circuit {
    assert!(stages >= 1, "need at least one stage");
    let mut b = String::from("V1 vcc 0 15\nRS vcc b0 180k\n");
    for i in 0..stages {
        b += &format!("RB{i} b{i} 0 39k\n");
        b += &format!("RC{i} vcc c{i} 4.7k\n");
        b += &format!("RE{i} e{i} 0 1k\n");
        b += &format!("Q{i} c{i} b{i} e{i} QN\n");
        if i + 1 < stages {
            b += &format!("RXC{i} c{i} b{} 10k\n", i + 1);
        }
    }
    if let Some(rf) = feedback_kohm {
        b += &format!("RF c{} b0 {rf}k\n", stages - 1);
    }
    build(name, b)
}

/// A cross-coupled bistable pair — the `latch`/`slowlatch` family. Large
/// `loop_gain_kohm` weakens the coupling (easier); slight asymmetry avoids
/// the exactly-metastable saddle.
pub fn bjt_latch(name: &str, coupling_kohm: f64, rc_kohm: f64) -> Circuit {
    let rc2 = rc_kohm * 1.07;
    let b = format!(
        "V1 vcc 0 5
RC1 vcc c1 {rc_kohm}k
RC2 vcc c2 {rc2}k
Q1 c1 b1 0 QN
Q2 c2 b2 0 QN
RB1 c2 b1 {coupling_kohm}k
RB2 c1 b2 {coupling_kohm}k
RP1 b1 0 18k
RP2 b2 0 18k
"
    );
    build(name, b)
}

/// Emitter-coupled Schmitt trigger with positive feedback (`SCHMITT`,
/// `schmitfast`, `TRISTABLE`).
pub fn bjt_schmitt(name: &str, feedback_kohm: f64) -> Circuit {
    let b = format!(
        "V1 vcc 0 12
RC1 vcc c1 2.2k
RC2 vcc c2 1k
Q1 c1 b1 e QN
Q2 c2 b2 e QN
RE e 0 470
RB1A vcc b1 56k
RB1B b1 0 33k
RF c1 b2 {feedback_kohm}k
RB2 b2 0 15k
"
    );
    build(name, b)
}

/// Astable multivibrator (`astabl`): DC-wise the cross caps are open, so
/// both transistors bias on through their base resistors.
pub fn bjt_astable(name: &str) -> Circuit {
    let b = "V1 vcc 0 9
RC1 vcc c1 1.8k
RC2 vcc c2 1.8k
RB1 vcc b1 100k
RB2 vcc b2 100k
C1 c1 b2 10n
C2 c2 b1 10n
Q1 c1 b1 0 QN
Q2 c2 b2 0 QN
"
    .to_string();
    build(name, b)
}

/// Relaxation oscillator core (`DCOSC`): Schmitt pair plus an RC feedback
/// path (the capacitor is DC-open, leaving a high-impedance bias point).
pub fn bjt_dc_oscillator(name: &str) -> Circuit {
    let b = "V1 vcc 0 10
RC1 vcc c1 1.5k
RC2 vcc c2 1.5k
Q1 c1 b1 e QN
Q2 c2 b2 e QN
RE e 0 330
RT c2 b1 82k
CT b1 0 100n
RB2A c1 b2 27k
RB2B b2 0 12k
"
    .to_string();
    build(name, b)
}

/// Series/parallel diode network with a stiff drive (`D10`, `D11`, `D22`).
/// `series` diodes per arm, `arms` parallel arms with unequal resistors.
pub fn diode_network(name: &str, series: usize, arms: usize) -> Circuit {
    assert!(series >= 1 && arms >= 1, "need at least one diode");
    let mut b = String::from("V1 in 0 6\nRS in top 47\n");
    for a in 0..arms {
        let mut prev = "top".to_string();
        for s in 0..series {
            let node = if s + 1 == series {
                format!("bot{a}")
            } else {
                format!("m{a}_{s}")
            };
            b += &format!("D{a}_{s} {prev} {node} DX\n");
            prev = node;
        }
        b += &format!("RA{a} bot{a} 0 {}\n", 100 * (a + 1));
    }
    build(name, b)
}

/// CMOS inverter chain (`Adding`-style MOS logic) driven by a resistive
/// divider.
pub fn mos_inverter_chain(name: &str, stages: usize) -> Circuit {
    assert!(stages >= 1, "need at least one stage");
    let mut b = String::from(
        "V1 vdd 0 5
RD1 vdd in 10k
RD2 in 0 12k
",
    );
    let mut prev = "in".to_string();
    for i in 0..stages {
        let out = format!("o{i}");
        b += &format!("MP{i} {out} {prev} vdd vdd PM W=20u L=2u\n");
        b += &format!("MN{i} {out} {prev} 0 0 NM W=10u L=2u\n");
        prev = out;
    }
    b += &format!("RL {prev} 0 100k\n");
    build(name, b)
}

/// A ripple chain of NAND-based half adders (`fadd32`-style): `bits` cells,
/// each built from NAND2 subcircuits.
pub fn mos_adder(name: &str, bits: usize) -> Circuit {
    assert!(bits >= 1, "need at least one bit");
    let mut b = String::from(
        "V1 vdd 0 5
RA vdd a 9k
RA2 a 0 11k
RB vdd bb 8k
RB2 bb 0 13k
.subckt NAND2 x y out vdd
MP1 out x vdd vdd PM W=20u L=2u
MP2 out y vdd vdd PM W=20u L=2u
MN1 out x mid 0 NM W=10u L=2u
MN2 mid y 0 0 NM W=10u L=2u
.ends
",
    );
    let mut carry = "bb".to_string();
    for i in 0..bits {
        // Half-adder from NANDs: s = (a ⊼ (a ⊼ c)) ⊼ (c ⊼ (a ⊼ c)).
        b += &format!("X{i}a a {carry} n{i}1 vdd NAND2\n");
        b += &format!("X{i}b a n{i}1 n{i}2 vdd NAND2\n");
        b += &format!("X{i}c {carry} n{i}1 n{i}3 vdd NAND2\n");
        b += &format!("X{i}d n{i}2 n{i}3 s{i} vdd NAND2\n");
        carry = format!("n{i}1");
    }
    b += &format!("RO {carry} 0 200k\n");
    build(name, b)
}

/// Majority-voter tree of NAND gates (`voter25`).
pub fn mos_voter(name: &str, leaves: usize) -> Circuit {
    assert!(leaves >= 2, "need at least two leaves");
    let mut b = String::from(
        "V1 vdd 0 5
.subckt NAND2 x y out vdd
MP1 out x vdd vdd PM W=20u L=2u
MP2 out y vdd vdd PM W=20u L=2u
MN1 out x mid 0 NM W=10u L=2u
MN2 mid y 0 0 NM W=10u L=2u
.ends
",
    );
    for i in 0..leaves {
        b += &format!("RL{i} vdd l{i} {}k\n", 8 + (i % 5));
        b += &format!("RL{i}b l{i} 0 {}k\n", 9 + (i % 4));
    }
    // Reduce pairwise until one node remains.
    let mut level: Vec<String> = (0..leaves).map(|i| format!("l{i}")).collect();
    let mut gate = 0;
    while level.len() > 1 {
        let mut next = Vec::new();
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                let out = format!("g{gate}");
                b += &format!("XG{gate} {} {} {out} vdd NAND2\n", pair[0], pair[1]);
                next.push(out);
                gate += 1;
            } else {
                next.push(pair[0].clone());
            }
        }
        level = next;
    }
    b += &format!("RO {} 0 150k\n", level[0]);
    build(name, b)
}

/// Six-transistor SRAM cell with access transistors (`cram`).
pub fn mos_ram_cell(name: &str) -> Circuit {
    let b = "V1 vdd 0 5
V2 wl 0 5
RBL vdd bl 5k
RBLB vdd blb 5.5k
MP1 q qb vdd vdd PM W=10u L=2u
MN1 q qb 0 0 NM W=20u L=2u
MP2 qb q vdd vdd PM W=10u L=2u
MN2 qb q 0 0 NM W=20u L=2u
MA1 bl wl q 0 NM W=10u L=2u
MA2 blb wl qb 0 NM W=10u L=2u
"
    .to_string();
    build(name, b)
}

/// MOS full-wave bridge rectifier with diode-connected, source-tied-bulk
/// transistors (`mosrect`).
pub fn mos_rectifier(name: &str) -> Circuit {
    let b = "V1 acp 0 3
V2 acn 0 -3
MD1 acp acp out out NM W=40u L=2u
MD2 acn acn out out NM W=40u L=2u
MD3 ret ret acp acp NM W=40u L=2u
MD4 ret ret acn acn NM W=40u L=2u
RL out ret 2.2k
RREF ret 0 1meg
"
    .to_string();
    build(name, b)
}

/// Two-stage MOS amplifier with PMOS mirror loads (`mosamp`).
pub fn mos_amplifier(name: &str, stages: usize) -> Circuit {
    assert!(stages >= 1, "need at least one stage");
    let mut b = String::from(
        "V1 vdd 0 5
RB1 vdd inp 60k
RB2 inp 0 40k
",
    );
    let mut prev = "inp".to_string();
    for i in 0..stages {
        b += &format!("MPL{i} d{i} mb{i} vdd vdd PM W=30u L=3u\n");
        b += &format!("RMB{i} vdd mb{i} 45k\n");
        b += &format!("MPD{i} mb{i} mb{i} vdd vdd PM W=30u L=3u\n");
        b += &format!("MN{i} d{i} {prev} s{i} 0 NM W=20u L=2u\n");
        b += &format!("RS{i} s{i} 0 820\n");
        prev = format!("d{i}");
    }
    b += &format!("RL {prev} 0 120k\n");
    build(name, b)
}

/// Bandgap-reference core: ratioed BJT pair with a MOS mirror on top
/// (`MOSBandgap` — MOS-flagged but containing BJTs, like the original).
pub fn bandgap(name: &str, extra_mirror_legs: usize) -> Circuit {
    let mut b = String::from(
        "V1 vdd 0 5
MP1 x y vdd vdd PM W=40u L=4u
MP2 y y vdd vdd PM W=40u L=4u
Q1 x x 0 QN
R1 y z 4.3k
Q2 z z 0 QN
Q3 z2 z2 0 QN
R3 z z2 1.1k
RO vdd out 30k
MP3 out y vdd vdd PM W=40u L=4u
RL out 0 60k
",
    );
    for i in 0..extra_mirror_legs {
        b += &format!("MPX{i} w{i} y vdd vdd PM W=40u L=4u\n");
        b += &format!("RW{i} w{i} 0 {}k\n", 20 + 7 * i);
    }
    build(name, b)
}

/// Class-AB push–pull output stage with driver and feedback (`ab_ac`,
/// `ab_integ`, `ab_opamp`). The crossover region plus global feedback makes
/// pure PTA oscillate badly.
pub fn class_ab(name: &str, driver_stages: usize, feedback_kohm: f64) -> Circuit {
    assert!(driver_stages >= 1, "need a driver");
    let mut b = String::from(
        "V1 vcc 0 12
V2 vee 0 -12
RIN vcc b0 220k
RIN2 b0 vee 200k
",
    );
    let mut prev = "b0".to_string();
    for i in 0..driver_stages {
        b += &format!("RCD{i} vcc cd{i} 5.6k\n");
        b += &format!("QD{i} cd{i} {prev} ed{i} QN\n");
        b += &format!("RED{i} ed{i} vee 2.2k\n");
        prev = format!("cd{i}");
    }
    b += &format!(
        "D1 {prev} bn DX
D2 bn bp DX
RBIAS bp vee 8.2k
QO1 vcc {prev} out QN
QO2 vee bp out QP
RLOAD out 0 220
RF out b0 {feedback_kohm}k
"
    );
    build(name, b)
}

/// Multi-stage BJT op-amp: differential input pair, gain stages, emitter
/// follower, optional feedback (UA709/UA727/UA733/RCA3040/rca/nagle/e1480/
/// todd3/THM5 all come from this family with different knobs).
pub fn bjt_opamp(
    name: &str,
    gain_stages: usize,
    feedback_kohm: Option<f64>,
    tail_kohm: f64,
) -> Circuit {
    let mut b = format!(
        "V1 vcc 0 15
V2 vee 0 -15
RBP vcc inp 100k
RBP2 inp vee 100k
RBN vcc inn 98k
RBN2 inn vee 102k
RC1 vcc d1 10k
RC2 vcc d2 10k
QD1 d1 inp tail QN
QD2 d2 inn tail QN
RT tail vee {tail_kohm}k
"
    );
    let mut prev = "d2".to_string();
    for i in 0..gain_stages {
        b += &format!("RCG{i} vcc cg{i} 6.8k\n");
        b += &format!("QG{i} cg{i} {prev} eg{i} QN\n");
        b += &format!("REG{i} eg{i} vee 3.3k\n");
        prev = format!("cg{i}");
    }
    b += &format!(
        "QEF vcc {prev} out QN
REF out vee 4.7k
"
    );
    if let Some(rf) = feedback_kohm {
        b += &format!("RFB out inn {rf}k\n");
    }
    build(name, b)
}

/// Six-stage limiting amplifier (`6stageLimAmp`): cascade of diff pairs with
/// diode limiters between stages.
pub fn limiting_amplifier(name: &str, stages: usize) -> Circuit {
    assert!(stages >= 1, "need at least one stage");
    let mut b = String::from(
        "V1 vcc 0 6
RB1 vcc i0p 47k
RB2 i0p 0 47k
RB3 vcc i0n 46k
RB4 i0n 0 48k
",
    );
    for i in 0..stages {
        let (ip, in_) = if i == 0 {
            ("i0p".to_string(), "i0n".to_string())
        } else {
            (format!("o{}p", i - 1), format!("o{}n", i - 1))
        };
        b += &format!("RCP{i} vcc o{i}p 2.4k\n");
        b += &format!("RCN{i} vcc o{i}n 2.4k\n");
        b += &format!("QP{i} o{i}p {ip} t{i} QN\n");
        b += &format!("QN{i} o{i}n {in_} t{i} QN\n");
        b += &format!("RT{i} t{i} 0 1.2k\n");
        b += &format!("DL{i}a o{i}p o{i}n DX\n");
        b += &format!("DL{i}b o{i}n o{i}p DX\n");
    }
    build(name, b)
}

/// Gas-discharge indicator driver (`TADEGLOW`): high-voltage supply, diode
/// stack breakdown path and a BJT switch.
pub fn glow_discharge(name: &str, stack: usize) -> Circuit {
    assert!(stack >= 1, "need at least one diode");
    let mut b = String::from("V1 hv 0 90\nRS hv a0 150k\n");
    for i in 0..stack {
        b += &format!("DS{i} a{i} a{} DX\n", i + 1);
    }
    b += &format!(
        "RG a{stack} g 68k
Q1 a0 g 0 QN
RGB g 0 120k
"
    );
    build(name, b)
}

/// An array of 6T SRAM cells sharing bit lines (`MOSMEM`): `cells` coupled
/// bistables make this the hardest circuit in the paper's Table 3 — naive
/// PTA stepping oscillates between the cells' metastable regions.
pub fn mos_memory(name: &str, cells: usize) -> Circuit {
    assert!(cells >= 1, "need at least one cell");
    let mut b = String::from(
        "V1 vdd 0 5
V2 wl 0 2.5
RBL vdd bl 4.7k
RBLB vdd blb 5.1k
",
    );
    for i in 0..cells {
        b += &format!("MP1_{i} q{i} qb{i} vdd vdd PM W=10u L=2u\n");
        b += &format!("MN1_{i} q{i} qb{i} 0 0 NM W=20u L=2u\n");
        b += &format!("MP2_{i} qb{i} q{i} vdd vdd PM W=10u L=2u\n");
        b += &format!("MN2_{i} qb{i} q{i} 0 0 NM W=20u L=2u\n");
        b += &format!("MA1_{i} bl wl q{i} 0 NM W=8u L=2u\n");
        b += &format!("MA2_{i} blb wl qb{i} 0 NM W=8u L=2u\n");
    }
    build(name, b)
}

/// A Wilson-mirror-loaded transconductance cell (`TRCKTorig`, `THM5`
/// variants): mirrors stacked on a diff pair.
pub fn wilson_ota(name: &str) -> Circuit {
    let b = "V1 vcc 0 10
RB1 vcc inp 82k
RB2 inp 0 82k
RB3 vcc inn 80k
RB4 inn 0 84k
QD1 m1 inp tail QN
QD2 out inn tail QN
RT tail 0 12k
QW1 m1 m2 vcc QP
QW2 m2 m2 vcc QP
QW3 out m1 vcc QP
RL out 0 39k
"
    .to_string();
    build(name, b)
}

/// Odd-length CMOS ring oscillator. Its only DC solution is the metastable
/// mid-rail point where every inverter balances — the classic pathological
/// case for plain Newton and a stiff crawl for naive PTA stepping.
pub fn ring_oscillator(name: &str, stages: usize) -> Circuit {
    assert!(stages >= 3 && stages % 2 == 1, "need an odd ring of ≥ 3");
    let mut b = String::from("V1 vdd 0 5\n");
    for i in 0..stages {
        let inp = format!("r{}", i);
        let out = format!("r{}", (i + 1) % stages);
        b += &format!("MP{i} {out} {inp} vdd vdd PM W=20u L=2u\n");
        b += &format!("MN{i} {out} {inp} 0 0 NM W=10u L=2u\n");
    }
    // Weak tie keeps the matrix nonsingular at the metastable point.
    b += "RT r0 0 10meg\n";
    build(name, b)
}

/// Darlington output stage driving a low-impedance load: two stacked VBE
/// drops with β² current gain make the input node extremely sensitive.
pub fn darlington(name: &str) -> Circuit {
    let b = "V1 vcc 0 12
RB vcc b1 470k
Q1 vcc b1 e1 QN
Q2 vcc e1 out QN
RL out 0 22
RD e1 out 8.2k
"
    .to_string();
    build(name, b)
}

/// Cascode amplifier: common-emitter into common-base, with a stiff bias
/// ladder.
pub fn cascode(name: &str) -> Circuit {
    let b = "V1 vcc 0 15
RB1 vcc bcas 33k
RB2 bcas bce 22k
RB3 bce 0 15k
RC vcc out 4.7k
Q1 out bcas mid QN
Q2 mid bce e QN
RE e 0 1.5k
"
    .to_string();
    build(name, b)
}

/// Emitter-coupled-logic gate: differential pair against a reference,
/// emitter-follower outputs — fast, never saturates, but high loop
/// sensitivity.
pub fn ecl_gate(name: &str) -> Circuit {
    let b = "V1 vee 0 -5.2
RIN1 0 ina 4.7k
RIN2 ina vee 10k
RREF1 0 vref 1.5k
RREF2 vref vee 2.2k
RC1 0 c1 270
RC2 0 c2 300
QA c1 ina etail QN
QB c2 vref etail QN
RT etail vee 1.2k
QO1 0 c1 outa QN
RO1 outa vee 1.5k
QO2 0 c2 outb QN
RO2 outb vee 1.5k
"
    .to_string();
    build(name, b)
}

/// TTL NAND input structure: multi-emitter input transistor approximated by
/// two input BJTs, phase splitter and totem-pole output — deep saturation
/// everywhere, a junction-limiter workout.
pub fn ttl_gate(name: &str) -> Circuit {
    let b = "V1 vcc 0 5
RA vcc ina 12k
RB vcc inb 13k
Q1A base ina coll QN
Q1B base inb coll QN
R1 vcc base 4k
Q2 c2 coll e2 QN
R2 vcc c2 1.6k
R3 e2 0 1k
Q3 out e2 0 QN
Q4 c4 c2 mid QN
R4 vcc c4 130
D1 mid out DX
RL out 0 2.2k
"
    .to_string();
    build(name, b)
}

/// Wide-swing cascode current mirror in MOS, a common analog block with a
/// narrow feasible bias region.
pub fn wide_swing_mirror(name: &str) -> Circuit {
    let b = "V1 vdd 0 5
IREF vdd d1 50u
MN1 d1 d1 s1 0 NM W=20u L=2u
MN2 s1 s1 0 0 NM W=20u L=2u
MN3 out d1 s3 0 NM W=20u L=2u
MN4 s3 s1 0 0 NM W=20u L=2u
RL vdd out 47k
"
    .to_string();
    build(name, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlpta_mna::CircuitFeatures;

    #[test]
    fn bias_chain_counts_scale_with_stages() {
        let c3 = bjt_bias_chain("b3", 3, 10.0);
        let c6 = bjt_bias_chain("b6", 6, 10.0);
        assert!(c6.num_nodes() > c3.num_nodes());
        assert!(CircuitFeatures::extract(&c3).is_bjt);
    }

    #[test]
    fn amplifier_feedback_adds_element() {
        let open = bjt_amplifier("a", 3, None);
        let closed = bjt_amplifier("b", 3, Some(47.0));
        assert_eq!(closed.devices().len(), open.devices().len() + 1);
    }

    #[test]
    fn latch_is_bistable_topology() {
        let c = bjt_latch("l", 12.0, 1.0);
        let f = CircuitFeatures::extract(&c);
        assert_eq!(f.num_bjts, 2);
        assert!(f.is_bjt);
    }

    #[test]
    fn diode_network_scales() {
        let c = diode_network("d", 4, 3);
        let diodes = c
            .devices()
            .iter()
            .filter(|d| matches!(d, rlpta_devices::Device::Diode(_)))
            .count();
        assert_eq!(diodes, 12);
    }

    #[test]
    fn mos_families_are_mos_flagged() {
        for c in [
            mos_inverter_chain("i", 4),
            mos_adder("f", 2),
            mos_voter("v", 5),
            mos_ram_cell("r"),
            mos_rectifier("mr"),
            mos_amplifier("ma", 2),
        ] {
            assert!(!CircuitFeatures::extract(&c).is_bjt, "{}", c.title());
        }
    }

    #[test]
    fn adder_grows_with_bits() {
        let c2 = mos_adder("a2", 2);
        let c8 = mos_adder("a8", 8);
        assert!(c8.num_nodes() > 3 * c2.num_nodes() / 2);
    }

    #[test]
    fn voter_reduces_to_single_output() {
        // 5 leaves → 4 gates; all solvable structure.
        let c = mos_voter("v5", 5);
        let mosfets = CircuitFeatures::extract(&c).num_mosfets;
        assert_eq!(mosfets, 16, "4 NAND2 gates à 4 transistors");
    }

    #[test]
    fn bandgap_is_hybrid_but_mos_dominant_with_legs() {
        let c = bandgap("bg", 3);
        let f = CircuitFeatures::extract(&c);
        assert!(f.num_mosfets > f.num_bjts);
    }

    #[test]
    fn opamp_has_feedback_option() {
        let c = bjt_opamp("op", 2, Some(100.0), 10.0);
        assert!(c.devices().iter().any(|d| d.name() == "RFB"));
    }

    #[test]
    fn limiting_amp_stage_count() {
        let c = limiting_amplifier("lim", 6);
        let f = CircuitFeatures::extract(&c);
        assert_eq!(f.num_bjts, 12, "two BJTs per stage");
    }

    #[test]
    fn stress_families_build() {
        for c in [
            ring_oscillator("ring3", 3),
            ring_oscillator("ring7", 7),
            darlington("darl"),
            cascode("casc"),
            ecl_gate("ecl"),
            ttl_gate("ttl"),
            wide_swing_mirror("wsm"),
        ] {
            assert!(c.is_nonlinear(), "{}", c.title());
        }
    }

    #[test]
    #[should_panic(expected = "odd ring")]
    fn ring_rejects_even_stages() {
        let _ = ring_oscillator("bad", 4);
    }

    #[test]
    fn ring_scales_with_stages() {
        let c3 = ring_oscillator("r3", 3);
        let c9 = ring_oscillator("r9", 9);
        assert_eq!(
            CircuitFeatures::extract(&c9).num_mosfets,
            3 * CircuitFeatures::extract(&c3).num_mosfets
        );
    }

    #[test]
    fn all_families_build_and_are_nonlinear() {
        let all = vec![
            bjt_bias_chain("t1", 4, 12.0),
            bjt_current_mirrors("t2", 3),
            bjt_amplifier("t3", 2, Some(68.0)),
            bjt_latch("t4", 10.0, 1.5),
            bjt_schmitt("t5", 15.0),
            bjt_astable("t6"),
            bjt_dc_oscillator("t7"),
            diode_network("t8", 3, 2),
            mos_inverter_chain("t9", 3),
            mos_adder("t10", 2),
            mos_voter("t11", 4),
            mos_ram_cell("t12"),
            mos_rectifier("t13"),
            mos_amplifier("t14", 2),
            bandgap("t15", 1),
            class_ab("t16", 1, 100.0),
            bjt_opamp("t17", 1, None, 15.0),
            limiting_amplifier("t18", 2),
            glow_discharge("t19", 5),
            wilson_ota("t20"),
        ];
        for c in all {
            assert!(c.is_nonlinear(), "{} must be nonlinear", c.title());
            assert!(c.num_nodes() >= 2, "{} too small", c.title());
        }
    }
}
