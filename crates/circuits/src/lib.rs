//! Synthetic benchmark circuit generators for the DAC'22 tables and
//! figures.
//!
//! The paper evaluates on proprietary/canonical netlists (UA709, nagle,
//! slowlatch, …) that are not redistributable. This crate substitutes
//! **parametric circuits of the same topological families** — bias chains,
//! multi-stage BJT op-amps, cross-coupled latches, Schmitt triggers, class-AB
//! output stages, MOS logic (adders, voters, RAM cells), rectifiers and
//! bandgap references — sized close to the node/element counts the paper
//! reports. The *names are preserved* so the experiment harness prints the
//! paper's row labels; `DESIGN.md` documents the substitution rationale.
//!
//! Difficulty spans the same spectrum: bias networks converge in tens of NR
//! iterations, while high-loop-gain latches and class-AB stages make naive
//! PTA stepping thrash — exactly the behaviour the RL-S controller exploits.
//!
//! # Example
//!
//! ```
//! use rlpta_circuits::{by_name, table3};
//!
//! let bench = by_name("slowlatch").expect("known benchmark");
//! assert!(bench.is_bjt);
//! assert!(bench.circuit.num_nodes() > 2);
//! assert_eq!(table3().len(), 33);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod families;
mod suites;

pub use suites::{
    by_name, fig5, stress, table2, table2_training, table3, training_corpus,
    training_corpus_seeded, Benchmark,
};
