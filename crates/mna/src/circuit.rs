//! The finalized circuit and MNA assembly.

use rlpta_devices::{Device, EvalCtx, Stamper};
use rlpta_linalg::Triplet;
use std::collections::HashMap;
use std::fmt;

/// A finalized circuit: named nodes, devices with assigned branch unknowns.
///
/// Produced by [`CircuitBuilder::build`](crate::CircuitBuilder::build) or the
/// netlist parser; consumed by the solvers in `rlpta-core`.
#[derive(Debug, Clone)]
pub struct Circuit {
    title: String,
    node_names: Vec<String>,
    name_to_node: HashMap<String, usize>,
    devices: Vec<Device>,
    num_branches: usize,
    /// Per-device offsets into the junction-limiting state vector.
    state_offsets: Vec<usize>,
    state_len: usize,
}

impl Circuit {
    pub(crate) fn from_parts(
        title: String,
        node_names: Vec<String>,
        name_to_node: HashMap<String, usize>,
        devices: Vec<Device>,
        num_branches: usize,
    ) -> Self {
        let mut state_offsets = Vec::with_capacity(devices.len());
        let mut state_len = 0;
        for d in &devices {
            state_offsets.push(state_len);
            state_len += d.state_len();
        }
        Self {
            title,
            node_names,
            name_to_node,
            devices,
            num_branches,
            state_offsets,
            state_len,
        }
    }

    /// Netlist title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of non-ground nodes (voltage unknowns).
    pub fn num_nodes(&self) -> usize {
        self.node_names.len()
    }

    /// Number of branch-current unknowns.
    pub fn num_branches(&self) -> usize {
        self.num_branches
    }

    /// Total MNA dimension (`num_nodes + num_branches`).
    pub fn dim(&self) -> usize {
        self.num_nodes() + self.num_branches
    }

    /// The devices of this circuit.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Voltage-unknown index of a named node, or `None` if unknown. Ground
    /// aliases return `None` as well (ground has no unknown).
    pub fn node_index(&self, name: &str) -> Option<usize> {
        self.name_to_node.get(name).copied()
    }

    /// Name of the node behind voltage unknown `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.num_nodes()`.
    pub fn node_name(&self, index: usize) -> &str {
        &self.node_names[index]
    }

    /// Returns `true` if any device is nonlinear.
    pub fn is_nonlinear(&self) -> bool {
        self.devices.iter().any(Device::is_nonlinear)
    }

    /// Changes the DC value of a named independent source (V or I),
    /// returning `false` when no such source exists. Used by DC sweeps.
    pub fn set_source_dc(&mut self, name: &str, value: f64) -> bool {
        for d in &mut self.devices {
            match d {
                Device::Vsource(v) if v.name().eq_ignore_ascii_case(name) => {
                    v.set_dc(value);
                    return true;
                }
                Device::Isource(i) if i.name().eq_ignore_ascii_case(name) => {
                    i.set_dc(value);
                    return true;
                }
                _ => {}
            }
        }
        false
    }

    /// Length of the junction-limiting device state vector.
    pub fn state_len(&self) -> usize {
        self.state_len
    }

    /// Per-device offsets into the junction-limiting state vector, aligned
    /// with [`Circuit::devices`].
    pub(crate) fn state_offsets(&self) -> &[usize] {
        &self.state_offsets
    }

    /// Allocates a fresh (zeroed) device state vector. Pass it to every
    /// [`Circuit::assemble_into`] of a Newton run so devices remember their
    /// limited junction voltages between iterations.
    pub fn new_state(&self) -> Vec<f64> {
        vec![0.0; self.state_len]
    }

    /// Assembles the Newton system at the operating point in `ctx` into the
    /// supplied Jacobian builder and residual vector, reusing their
    /// allocations. `state` is the device state vector created by
    /// [`Circuit::new_state`]; nonlinear devices update their limited
    /// junction voltages in it.
    ///
    /// On return `jacobian` holds `J(x)` (as summed triplets) and `residual`
    /// holds `F(x)`; the Newton step is the solution of `J·Δx = −F`.
    ///
    /// # Panics
    ///
    /// Panics if `jacobian`, `residual` or `state` have the wrong size.
    pub fn assemble_into(
        &self,
        ctx: &EvalCtx<'_>,
        jacobian: &mut Triplet,
        residual: &mut [f64],
        state: &mut [f64],
    ) {
        assert_eq!(jacobian.rows(), self.dim(), "jacobian dimension mismatch");
        assert_eq!(residual.len(), self.dim(), "residual dimension mismatch");
        assert_eq!(state.len(), self.state_len, "state dimension mismatch");
        jacobian.clear();
        residual.fill(0.0);
        let mut stamper = Stamper::new(jacobian, residual);
        for (d, &off) in self.devices.iter().zip(&self.state_offsets) {
            d.stamp(ctx, &mut stamper, &mut state[off..off + d.state_len()]);
        }
    }

    /// Convenience wrapper allocating fresh storage (including a fresh
    /// zeroed state) for [`Circuit::assemble_into`].
    pub fn assemble(&self, ctx: &EvalCtx<'_>) -> (Triplet, Vec<f64>) {
        let mut j = Triplet::with_capacity(self.dim(), self.dim(), 8 * self.devices.len());
        let mut r = vec![0.0; self.dim()];
        let mut s = self.new_state();
        self.assemble_into(ctx, &mut j, &mut r, &mut s);
        (j, r)
    }

    /// Evaluates only the residual `F(x)` of the *original* system (default
    /// gmin, full sources) — the steady-state test used by the PTA loop.
    ///
    /// Junction limiting is bypassed by pre-seeding the throwaway state with
    /// the actual junction voltages, so the returned residual is the true
    /// `F(x)` rather than a limited linearization.
    pub fn residual(&self, x: &[f64]) -> Vec<f64> {
        let ctx = EvalCtx::dc(x);
        let mut j = Triplet::with_capacity(self.dim(), self.dim(), 8 * self.devices.len());
        let mut r = vec![0.0; self.dim()];
        let mut s = self.seeded_state(x);
        self.assemble_into(&ctx, &mut j, &mut r, &mut s);
        r
    }

    /// Builds a state vector whose limited junction voltages equal the
    /// actual junction voltages at `x`, so the next evaluation at `x` is
    /// limit-free. Achieved by evaluating twice: the limiter walk converges
    /// to the true voltage once the state is close.
    pub fn seeded_state(&self, x: &[f64]) -> Vec<f64> {
        let mut s = self.new_state();
        let ctx = EvalCtx::dc(x);
        let mut j = Triplet::new(self.dim(), self.dim());
        let mut r = vec![0.0; self.dim()];
        // A handful of walks is enough for any realistic bias point.
        for _ in 0..64 {
            let before = s.clone();
            self.assemble_into(&ctx, &mut j, &mut r, &mut s);
            let moved = s
                .iter()
                .zip(&before)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            if moved < 1e-12 {
                break;
            }
        }
        s
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} nodes, {} branches, {} devices",
            self.title,
            self.num_nodes(),
            self.num_branches,
            self.devices.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CircuitBuilder;
    use rlpta_devices::{Isource, Node, Resistor, Vsource};
    use rlpta_linalg::SparseLu;

    /// 5 V source into a 1k/1k divider.
    fn divider() -> Circuit {
        let mut b = CircuitBuilder::new("divider");
        let vin = b.node("in");
        let vout = b.node("out");
        b.add(Vsource::new("V1", vin, Node::GROUND, 5.0));
        b.add(Resistor::new("R1", vin, vout, 1e3));
        b.add(Resistor::new("R2", vout, Node::GROUND, 1e3));
        b.build().unwrap()
    }

    #[test]
    fn linear_circuit_solves_in_one_newton_step() {
        let c = divider();
        let x0 = vec![0.0; c.dim()];
        let ctx = EvalCtx::dc(&x0);
        let (j, r) = c.assemble(&ctx);
        let lu = SparseLu::factorize(&j.to_csr()).unwrap();
        let neg_r: Vec<f64> = r.iter().map(|v| -v).collect();
        let dx = lu.solve(&neg_r).unwrap();
        let x: Vec<f64> = x0.iter().zip(&dx).map(|(a, b)| a + b).collect();
        let vin = c.node_index("in").unwrap();
        let vout = c.node_index("out").unwrap();
        assert!((x[vin] - 5.0).abs() < 1e-12);
        assert!((x[vout] - 2.5).abs() < 1e-12);
        // Source current: 5 V / 2 kΩ = 2.5 mA (flowing out of + terminal
        // through the circuit, so the branch current is −2.5 mA).
        assert!((x[2] + 2.5e-3).abs() < 1e-12);
    }

    #[test]
    fn residual_vanishes_at_solution() {
        let c = divider();
        let x = vec![5.0, 2.5, -2.5e-3];
        let r = c.residual(&x);
        for v in r {
            assert!(v.abs() < 1e-12, "residual component {v}");
        }
    }

    #[test]
    fn current_source_with_resistor() {
        // 1 mA into 1 kΩ → 1 V. Isource pos=gnd, neg=node: injects into node.
        let mut b = CircuitBuilder::new("isrc");
        let n = b.node("n1");
        b.add(Isource::new("I1", Node::GROUND, n, 1e-3));
        b.add(Resistor::new("R1", n, Node::GROUND, 1e3));
        let c = b.build().unwrap();
        let x0 = vec![0.0; c.dim()];
        let ctx = EvalCtx::dc(&x0);
        let (j, r) = c.assemble(&ctx);
        let lu = SparseLu::factorize(&j.to_csr()).unwrap();
        let neg_r: Vec<f64> = r.iter().map(|v| -v).collect();
        let x = lu.solve(&neg_r).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12, "v = {}", x[0]);
    }

    #[test]
    fn assemble_into_reuses_buffers() {
        let c = divider();
        let mut j = Triplet::new(c.dim(), c.dim());
        let mut r = vec![0.0; c.dim()];
        let mut s = c.new_state();
        let x = vec![0.0; c.dim()];
        let ctx = EvalCtx::dc(&x);
        c.assemble_into(&ctx, &mut j, &mut r, &mut s);
        let n1 = j.len();
        c.assemble_into(&ctx, &mut j, &mut r, &mut s);
        assert_eq!(j.len(), n1, "second assembly must not accumulate");
    }

    #[test]
    fn metadata_accessors() {
        let c = divider();
        assert_eq!(c.title(), "divider");
        assert_eq!(c.node_name(0), "in");
        assert_eq!(c.node_index("out"), Some(1));
        assert_eq!(c.node_index("missing"), None);
        assert!(!c.is_nonlinear());
        assert_eq!(c.devices().len(), 3);
        assert!(c.to_string().contains("divider"));
    }
}
