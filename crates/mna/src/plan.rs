//! Precompiled stamp plans: index-resolved MNA assembly.
//!
//! A [`StampPlan`] is the structural half of two-phase assembly. One
//! declare pass over the circuit (plus any solver extra stamps) records
//! every ground-filtered `(row, col)` Jacobian target in push order and
//! binds the sequence to direct nnz-slot indices in a frozen CSR pattern
//! via [`StampSlots`]. Every later evaluation ([`StampPlan::eval_into`])
//! replays the sequence through the slot table — no triplet allocation, no
//! sorting, no hashing, just a cursor walk scattering values in place.
//!
//! Bit-identity with [`Circuit::assemble_into`] followed by
//! [`Triplet::to_csr`] is the contract: the same device code runs in both
//! modes (the [`Stamper`] sink is what differs), the frozen pattern is the
//! same stable sort, and each slot accumulates its duplicates in push
//! order. See `rlpta-linalg::StampSlots` for the mechanics.

use crate::Circuit;
use rlpta_devices::{EvalCtx, Stamper};
use rlpta_linalg::{CsrMatrix, StampSlots, Triplet};

/// A resolved assembly plan for one circuit structure (and one solver
/// extra-stamp shape).
///
/// Immutable once built — share it via `Arc` across sweep points, PTA
/// steps, and service jobs with the same [`StructureKey`]-equivalent
/// structure. Working values buffers come from [`StampPlan::new_matrix`].
#[derive(Debug, Clone)]
pub struct StampPlan {
    slots: StampSlots,
    /// The frozen pattern with all values zero.
    template: CsrMatrix,
    /// The declared push sequence (devices first, then extra stamps) —
    /// kept for cheap [`StampPlan::compatible_with`] re-verification.
    targets: Vec<(usize, usize)>,
    /// How many of `targets` came from the devices alone (prefix length);
    /// the rest were declared by the solver's extra-stamp hook.
    device_pushes: usize,
    dim: usize,
    state_len: usize,
}

impl StampPlan {
    /// Resolves a plan for `circuit`: runs every device's structural
    /// declare pass (at `x = 0`, scratch state — the stamp sequence is
    /// operating-point independent) followed by `extra`, the solver's
    /// extra-stamp hook in declare mode, then freezes the induced pattern.
    ///
    /// `extra` must push the same ordered Jacobian targets the solver's
    /// evaluation-time hook will (values are ignored here). Solvers without
    /// extra stamps pass a no-op closure.
    ///
    /// No fault-injection draws are consumed (declare-mode [`Stamper`]
    /// contract), so resolving a plan never shifts seeded NaN sequences.
    pub fn resolve(circuit: &Circuit, extra: &mut dyn FnMut(&mut Stamper<'_>)) -> StampPlan {
        let dim = circuit.dim();
        let x0 = vec![0.0; dim];
        let ctx = EvalCtx::dc(&x0);
        let mut scratch_res = vec![0.0; dim];
        let mut scratch_state = circuit.new_state();
        let mut targets = Vec::with_capacity(16 * circuit.devices().len() + 2 * dim);
        for (d, &off) in circuit.devices().iter().zip(circuit.state_offsets()) {
            d.declare_stamps(
                &ctx,
                &mut targets,
                &mut scratch_res,
                &mut scratch_state[off..off + d.state_len()],
            );
        }
        let device_pushes = targets.len();
        {
            let mut st = Stamper::declare(&mut targets, &mut scratch_res);
            extra(&mut st);
        }
        let (template, slots) = StampSlots::build(dim, dim, &targets);
        StampPlan {
            slots,
            template,
            targets,
            device_pushes,
            dim,
            state_len: circuit.state_len(),
        }
    }

    /// MNA system dimension the plan was resolved for.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Structural non-zeros of the frozen pattern.
    pub fn nnz(&self) -> usize {
        self.template.nnz()
    }

    /// Total pushes one evaluation replays (devices + extra stamps).
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// `true` when the plan expects no pushes at all.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Approximate heap footprint in bytes (for cache byte budgets).
    pub fn approx_bytes(&self) -> usize {
        self.slots.approx_bytes()
            + self.targets.len() * std::mem::size_of::<(usize, usize)>()
            + self.template.nnz()
                * (std::mem::size_of::<f64>() + std::mem::size_of::<usize>())
            + (self.dim + 1) * std::mem::size_of::<usize>()
    }

    /// A fresh working matrix: the frozen pattern with zeroed values. One
    /// per solve context; [`StampPlan::eval_into`] rewrites it in place.
    pub fn new_matrix(&self) -> CsrMatrix {
        self.template.clone()
    }

    /// Cheap structural re-verification, the plan-side analogue of
    /// `SymbolicLu::compatible_with`: re-runs the device declare pass and
    /// compares the target sequence against this plan's device prefix.
    /// Value-only edits (a sweep jittering source values) keep the sequence
    /// identical; any topology change breaks it.
    pub fn compatible_with(&self, circuit: &Circuit) -> bool {
        if circuit.dim() != self.dim || circuit.state_len() != self.state_len {
            return false;
        }
        let x0 = vec![0.0; self.dim];
        let ctx = EvalCtx::dc(&x0);
        let mut scratch_res = vec![0.0; self.dim];
        let mut scratch_state = circuit.new_state();
        let mut fresh = Vec::with_capacity(self.device_pushes);
        for (d, &off) in circuit.devices().iter().zip(circuit.state_offsets()) {
            d.declare_stamps(
                &ctx,
                &mut fresh,
                &mut scratch_res,
                &mut scratch_state[off..off + d.state_len()],
            );
            if fresh.len() > self.device_pushes {
                return false;
            }
        }
        fresh.len() == self.device_pushes && fresh == self.targets[..self.device_pushes]
    }

    /// Numeric assembly through the plan: zeroes `residual`, replays every
    /// device's stamp sequence (and then `extra`) scattering Jacobian
    /// values into `matrix`'s slots in place, exactly mirroring
    /// [`Circuit::assemble_into`]. Returns `true` when every raw Jacobian
    /// stamp was finite — the scatter-path equivalent of
    /// [`Triplet::all_finite`] (the caller checks the residual itself, as
    /// on the triplet path).
    ///
    /// # Panics
    ///
    /// Panics if `matrix`/`residual`/`state` have the wrong shape or the
    /// push sequence no longer matches the plan (topology drift since
    /// resolve — guard with [`StampPlan::compatible_with`]).
    pub fn eval_into(
        &self,
        circuit: &Circuit,
        ctx: &EvalCtx<'_>,
        matrix: &mut CsrMatrix,
        residual: &mut [f64],
        state: &mut [f64],
        extra: &mut dyn FnMut(&mut Stamper<'_>),
    ) -> bool {
        assert_eq!(residual.len(), self.dim, "residual dimension mismatch");
        assert_eq!(state.len(), self.state_len, "state dimension mismatch");
        residual.fill(0.0);
        let mut st = Stamper::scatter(self.slots.writer(matrix), residual);
        for (d, &off) in circuit.devices().iter().zip(circuit.state_offsets()) {
            d.eval_into(ctx, &mut st, &mut state[off..off + d.state_len()]);
        }
        extra(&mut st);
        st.finish()
    }

    /// Builds the Gmin-bump companion: the frozen pattern united with every
    /// node diagonal, plus the scatter maps needed to replay a bumped
    /// factorization bit-identically to the triplet path's
    /// `jac.push(i, i, gshunt)` escalation.
    pub fn bump_plan(&self, num_nodes: usize) -> BumpPlan {
        // Union pattern via the triplet reference machinery — same stable
        // dedup as everything else.
        let mut t = Triplet::with_capacity(
            self.dim,
            self.dim,
            self.template.nnz() + num_nodes,
        );
        for (r, c, _) in self.template.iter() {
            t.push(r, c, 0.0);
        }
        for i in 0..num_nodes {
            t.push(i, i, 0.0);
        }
        let template = t.to_csr();
        let find = |r: usize, c: usize| -> usize {
            let lo = template.row_ptr()[r];
            let hi = template.row_ptr()[r + 1];
            let cols = &template.col_indices()[lo..hi];
            // The union contains every base entry and every diagonal by
            // construction.
            lo + cols.binary_search(&c).expect("entry present in union")
        };
        let base_map = self.template.iter().map(|(r, c, _)| find(r, c)).collect();
        let diag_slots = (0..num_nodes).map(|i| find(i, i)).collect();
        BumpPlan {
            template,
            base_map,
            diag_slots,
        }
    }
}

/// Scatter maps for the singular-matrix Gmin-bump escalation under a
/// [`StampPlan`]: the base pattern extended with all node diagonals.
///
/// The triplet path recovers from a singular factorization by appending
/// `gshunt` pushes on every node diagonal and re-converting; summation
/// order there is "base entries first, then each bump in order". The maps
/// here reproduce exactly that: copy base slot values across, then `+=`
/// the shunt on the diagonals, cumulatively per bump level.
#[derive(Debug, Clone)]
pub struct BumpPlan {
    template: CsrMatrix,
    /// For each base-pattern slot, its slot in the bumped pattern.
    base_map: Vec<usize>,
    /// Bumped-pattern slots of `(i, i)` for each node unknown `i`.
    diag_slots: Vec<usize>,
}

impl BumpPlan {
    /// A fresh working matrix over the bumped pattern (values zeroed).
    pub fn new_matrix(&self) -> CsrMatrix {
        self.template.clone()
    }

    /// Loads `base`'s values into `into` (zeroing entries that exist only
    /// in the bumped pattern). Bitwise copy — signed zeros survive.
    ///
    /// # Panics
    ///
    /// Panics if `base` or `into` do not match the patterns this plan was
    /// built from.
    pub fn scatter_base(&self, base: &CsrMatrix, into: &mut CsrMatrix) {
        assert_eq!(base.nnz(), self.base_map.len(), "base pattern mismatch");
        let values = into.values_mut();
        assert_eq!(values.len(), self.template.nnz(), "bumped pattern mismatch");
        values.fill(0.0);
        for (v, &slot) in base.values().iter().zip(&self.base_map) {
            values[slot] = *v;
        }
    }

    /// Adds `gshunt` on every node diagonal — one call per bump level, so
    /// repeated calls escalate cumulatively like repeated triplet pushes.
    pub fn add_diag(&self, into: &mut CsrMatrix, gshunt: f64) {
        let values = into.values_mut();
        for &slot in &self.diag_slots {
            values[slot] += gshunt;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CircuitBuilder;
    use rlpta_devices::{Diode, DiodeModel, Node, Resistor, Vsource};

    fn diode_circuit() -> Circuit {
        let mut b = CircuitBuilder::new("plan-test");
        let vin = b.node("in");
        let out = b.node("out");
        b.add(Vsource::new("V1", vin, Node::GROUND, 5.0));
        b.add(Resistor::new("R1", vin, out, 1e3));
        b.add(Diode::new("D1", out, Node::GROUND, DiodeModel::default()));
        b.build().unwrap()
    }

    /// Assembles via both paths at `x` and asserts bitwise equality.
    fn assert_bit_identical(circuit: &Circuit, x: &[f64]) {
        let ctx = EvalCtx::dc(x);
        // Triplet reference. Fresh state on both sides so limiting history
        // is identical.
        let mut jac = Triplet::new(circuit.dim(), circuit.dim());
        let mut res_t = vec![0.0; circuit.dim()];
        let mut state_t = circuit.new_state();
        circuit.assemble_into(&ctx, &mut jac, &mut res_t, &mut state_t);
        let reference = jac.to_csr();

        let plan = StampPlan::resolve(circuit, &mut |_| {});
        let mut m = plan.new_matrix();
        let mut res_p = vec![0.0; circuit.dim()];
        let mut state_p = circuit.new_state();
        let finite = plan.eval_into(circuit, &ctx, &mut m, &mut res_p, &mut state_p, &mut |_| {});
        assert!(finite);
        assert!(reference.same_pattern(&m), "pattern mismatch");
        for (a, b) in reference.values().iter().zip(m.values()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
        for (a, b) in res_t.iter().zip(&res_p) {
            assert_eq!(a.to_bits(), b.to_bits(), "residual {a} vs {b}");
        }
        assert_eq!(state_t, state_p, "limiter state diverged");
    }

    #[test]
    fn plan_matches_triplet_at_zero_and_biased_points() {
        let c = diode_circuit();
        assert_bit_identical(&c, &vec![0.0; c.dim()]);
        assert_bit_identical(&c, &[5.0, 0.62, -4.3e-3]);
        assert_bit_identical(&c, &[-2.0, -1.0, 1e-3]);
    }

    #[test]
    fn plan_reuse_does_not_accumulate() {
        let c = diode_circuit();
        let plan = StampPlan::resolve(&c, &mut |_| {});
        let mut m = plan.new_matrix();
        let mut res = vec![0.0; c.dim()];
        let mut state = c.new_state();
        let x = vec![0.0; c.dim()];
        let ctx = EvalCtx::dc(&x);
        plan.eval_into(&c, &ctx, &mut m, &mut res, &mut state, &mut |_| {});
        let first: Vec<u64> = m.values().iter().map(|v| v.to_bits()).collect();
        plan.eval_into(&c, &ctx, &mut m, &mut res, &mut state, &mut |_| {});
        let second: Vec<u64> = m.values().iter().map(|v| v.to_bits()).collect();
        assert_eq!(first, second, "second pass must overwrite, not add");
    }

    #[test]
    fn extra_stamps_are_planned_too() {
        let c = diode_circuit();
        let dim = c.dim();
        // Pseudo-element-style extra: shunts on every node diagonal.
        let plan = StampPlan::resolve(&c, &mut |st| {
            for i in 0..2 {
                st.jac_raw(i, i, 0.0);
            }
        });
        let ctx_x = vec![0.0; dim];
        let ctx = EvalCtx::dc(&ctx_x);

        let mut jac = Triplet::new(dim, dim);
        let mut res_t = vec![0.0; dim];
        let mut state_t = c.new_state();
        c.assemble_into(&ctx, &mut jac, &mut res_t, &mut state_t);
        for i in 0..2 {
            jac.push(i, i, 3.5);
        }
        let reference = jac.to_csr();

        let mut m = plan.new_matrix();
        let mut res_p = vec![0.0; dim];
        let mut state_p = c.new_state();
        plan.eval_into(&c, &ctx, &mut m, &mut res_p, &mut state_p, &mut |st| {
            for i in 0..2 {
                st.jac_raw(i, i, 3.5);
            }
        });
        assert!(reference.same_pattern(&m));
        for (a, b) in reference.values().iter().zip(m.values()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn compatible_with_accepts_value_edits_rejects_topology_changes() {
        let mut c = diode_circuit();
        let plan = StampPlan::resolve(&c, &mut |_| {});
        assert!(plan.compatible_with(&c));
        // Value-only edit: same structure.
        assert!(c.set_source_dc("V1", 4.9));
        assert!(plan.compatible_with(&c));
        // Different topology: reject.
        let mut b = CircuitBuilder::new("other");
        let a = b.node("a");
        b.add(Vsource::new("V1", a, Node::GROUND, 1.0));
        b.add(Resistor::new("R1", a, Node::GROUND, 1.0));
        let other = b.build().unwrap();
        assert!(!plan.compatible_with(&other));
    }

    #[test]
    fn bump_plan_matches_triplet_escalation() {
        let c = diode_circuit();
        let num_nodes = c.num_nodes();
        let x = vec![0.0; c.dim()];
        let ctx = EvalCtx::dc(&x);

        // Triplet path: assemble, then push two escalating shunt rounds.
        let mut jac = Triplet::new(c.dim(), c.dim());
        let mut res = vec![0.0; c.dim()];
        let mut state = c.new_state();
        c.assemble_into(&ctx, &mut jac, &mut res, &mut state);
        for i in 0..num_nodes {
            jac.push(i, i, 1e-7);
        }
        let ref_bump1 = jac.to_csr();
        for i in 0..num_nodes {
            jac.push(i, i, 1e-5);
        }
        let ref_bump2 = jac.to_csr();

        // Plan path: base eval, scatter into bumped pattern, add shunts.
        let plan = StampPlan::resolve(&c, &mut |_| {});
        let mut base = plan.new_matrix();
        let mut res_p = vec![0.0; c.dim()];
        let mut state_p = c.new_state();
        plan.eval_into(&c, &ctx, &mut base, &mut res_p, &mut state_p, &mut |_| {});
        let bump = plan.bump_plan(num_nodes);
        let mut work = bump.new_matrix();
        bump.scatter_base(&base, &mut work);
        bump.add_diag(&mut work, 1e-7);
        assert!(ref_bump1.same_pattern(&work));
        for (a, b) in ref_bump1.values().iter().zip(work.values()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        bump.add_diag(&mut work, 1e-5);
        for (a, b) in ref_bump2.values().iter().zip(work.values()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
