//! Circuit feature extraction for the initial-parameter predictor.
//!
//! The DAC'22 paper (following Zhang et al., DATE'19 and BoA-PTA) describes
//! a netlist ξ by seven statistics — node count, MNA equation count, and the
//! numbers of independent current sources, resistors, voltage sources, BJTs
//! and MOSFETs — plus a binary flag marking the circuit as BJT- or MOS-type,
//! which selects the kernel branch in Eq. (4).

use crate::Circuit;
use rlpta_devices::Device;

/// The seven netlist statistics + type flag characterizing a circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CircuitFeatures {
    /// Number of non-ground nodes.
    pub num_nodes: usize,
    /// Number of MNA equations (nodes + branch currents).
    pub num_mna_equations: usize,
    /// Number of independent current sources.
    pub num_isources: usize,
    /// Number of resistors.
    pub num_resistors: usize,
    /// Number of independent voltage sources.
    pub num_vsources: usize,
    /// Number of bipolar junction transistors.
    pub num_bjts: usize,
    /// Number of MOS field-effect transistors.
    pub num_mosfets: usize,
    /// Type flag τ: `true` when the circuit is BJT-dominated (the paper's
    /// BJT/MOS prior switch).
    pub is_bjt: bool,
}

impl CircuitFeatures {
    /// Extracts features from a finalized circuit.
    pub fn extract(circuit: &Circuit) -> Self {
        let mut f = CircuitFeatures {
            num_nodes: circuit.num_nodes(),
            num_mna_equations: circuit.dim(),
            ..Self::default()
        };
        for d in circuit.devices() {
            match d {
                Device::Isource(_) => f.num_isources += 1,
                Device::Resistor(_) => f.num_resistors += 1,
                Device::Vsource(_) => f.num_vsources += 1,
                Device::Bjt(_) => f.num_bjts += 1,
                Device::Mosfet(_) => f.num_mosfets += 1,
                _ => {}
            }
        }
        f.is_bjt = f.num_bjts >= f.num_mosfets;
        f
    }

    /// The seven statistics as an `f64` vector in `log1p` scale (counts span
    /// orders of magnitude; the GP kernel wants comparable ranges), without
    /// the type flag.
    pub fn to_vec(&self) -> Vec<f64> {
        [
            self.num_nodes,
            self.num_mna_equations,
            self.num_isources,
            self.num_resistors,
            self.num_vsources,
            self.num_bjts,
            self.num_mosfets,
        ]
        .iter()
        .map(|&c| (c as f64).ln_1p())
        .collect()
    }

    /// Dimension of [`CircuitFeatures::to_vec`].
    pub const DIM: usize = 7;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CircuitBuilder;
    use rlpta_devices::{Bjt, BjtModel, Isource, MosModel, Mosfet, Node, Resistor, Vsource};

    fn sample() -> Circuit {
        let mut b = CircuitBuilder::new("feat");
        let n1 = b.node("1");
        let n2 = b.node("2");
        let n3 = b.node("3");
        b.add(Vsource::new("V1", n1, Node::GROUND, 5.0));
        b.add(Resistor::new("R1", n1, n2, 1e3));
        b.add(Resistor::new("R2", n2, Node::GROUND, 1e3));
        b.add(Isource::new("I1", Node::GROUND, n3, 1e-3));
        b.add(Resistor::new("R3", n3, Node::GROUND, 1e3));
        b.add(Bjt::new("Q1", n1, n2, Node::GROUND, BjtModel::default()));
        b.build().unwrap()
    }

    #[test]
    fn counts_devices() {
        let f = CircuitFeatures::extract(&sample());
        assert_eq!(f.num_nodes, 3);
        assert_eq!(f.num_mna_equations, 4); // 3 nodes + 1 vsource branch
        assert_eq!(f.num_resistors, 3);
        assert_eq!(f.num_vsources, 1);
        assert_eq!(f.num_isources, 1);
        assert_eq!(f.num_bjts, 1);
        assert_eq!(f.num_mosfets, 0);
        assert!(f.is_bjt);
    }

    #[test]
    fn mos_flag() {
        let mut b = CircuitBuilder::new("mos");
        let d = b.node("d");
        let g = b.node("g");
        b.add(Vsource::new("V1", g, Node::GROUND, 3.0));
        b.add(Resistor::new("R1", d, Node::GROUND, 1e4));
        b.add(Mosfet::new(
            "M1",
            d,
            g,
            Node::GROUND,
            Node::GROUND,
            MosModel::default(),
            2.0,
        ));
        let f = CircuitFeatures::extract(&b.build().unwrap());
        assert!(!f.is_bjt);
        assert_eq!(f.num_mosfets, 1);
    }

    #[test]
    fn vector_is_log_scaled() {
        let f = CircuitFeatures::extract(&sample());
        let v = f.to_vec();
        assert_eq!(v.len(), CircuitFeatures::DIM);
        assert!((v[0] - (3f64).ln_1p()).abs() < 1e-15);
        // All entries finite and non-negative.
        assert!(v.iter().all(|x| x.is_finite() && *x >= 0.0));
    }
}
