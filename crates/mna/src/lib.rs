//! Circuit graph and modified nodal analysis (MNA) assembly.
//!
//! A [`Circuit`] owns named nodes and a list of
//! [`Device`](rlpta_devices::Device)s. Building it assigns every voltage
//! node an MNA unknown index and every branch-owning device (voltage
//! sources, inductors, VCVS) a branch-current unknown appended after the
//! node voltages, giving the unknown vector
//! `x = [v_0 … v_{N−1}, i_0 … i_{M−1}]`.
//!
//! [`Circuit::assemble_into`] produces the Newton system `J(x)·Δx = −F(x)`
//! by folding every device stamp at the operating point; it is the single
//! entry point the solvers in `rlpta-core` use.
//!
//! [`CircuitFeatures`] extracts the seven netlist statistics (plus the
//! BJT/MOS type flag) the DAC'22 paper uses to characterize a circuit for
//! the Gaussian-process initial-parameter predictor.
//!
//! # Example
//!
//! ```
//! use rlpta_mna::CircuitBuilder;
//! use rlpta_devices::{Node, Resistor, Vsource};
//!
//! # fn main() -> Result<(), rlpta_mna::BuildCircuitError> {
//! let mut b = CircuitBuilder::new("divider");
//! let vin = b.node("in");
//! let vout = b.node("out");
//! b.add(Vsource::new("V1", vin, Node::GROUND, 5.0));
//! b.add(Resistor::new("R1", vin, vout, 1e3));
//! b.add(Resistor::new("R2", vout, Node::GROUND, 1e3));
//! let circuit = b.build()?;
//! assert_eq!(circuit.num_nodes(), 2);
//! assert_eq!(circuit.dim(), 3); // two nodes + one source branch
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod circuit;
mod features;
mod plan;

pub use builder::{BuildCircuitError, CircuitBuilder};
pub use circuit::Circuit;
pub use features::CircuitFeatures;
pub use plan::{BumpPlan, StampPlan};
