//! Incremental circuit construction.

use crate::Circuit;
use rlpta_devices::{Device, Node};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Errors detected when finalizing a [`CircuitBuilder`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildCircuitError {
    /// Two devices share the same name.
    DuplicateDeviceName {
        /// The offending name.
        name: String,
    },
    /// The circuit contains no devices.
    Empty,
    /// A node has no DC path of any kind (it appears on no device terminal),
    /// which would make the MNA matrix structurally singular.
    DanglingNode {
        /// Name of the unconnected node.
        name: String,
    },
    /// A current-controlled source references a voltage source that does
    /// not exist in the circuit.
    UnknownControlSource {
        /// The referencing element.
        element: String,
        /// The missing voltage-source name.
        source: String,
    },
}

impl fmt::Display for BuildCircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildCircuitError::DuplicateDeviceName { name } => {
                write!(f, "duplicate device name `{name}`")
            }
            BuildCircuitError::Empty => write!(f, "circuit contains no devices"),
            BuildCircuitError::DanglingNode { name } => {
                write!(f, "node `{name}` is not connected to any device")
            }
            BuildCircuitError::UnknownControlSource { element, source } => {
                write!(
                    f,
                    "element `{element}` references unknown voltage source `{source}`"
                )
            }
        }
    }
}

impl Error for BuildCircuitError {}

/// Builds a [`Circuit`] incrementally: intern nodes by name, add devices,
/// then [`CircuitBuilder::build`].
///
/// The node names `"0"`, `"gnd"` and `"GND"` are reserved for ground.
#[derive(Debug, Clone, Default)]
pub struct CircuitBuilder {
    title: String,
    node_names: Vec<String>,
    name_to_node: HashMap<String, usize>,
    devices: Vec<Device>,
}

impl CircuitBuilder {
    /// Creates an empty builder with a netlist title.
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            ..Self::default()
        }
    }

    /// Interns a node by name, returning its handle. Repeated calls with the
    /// same name return the same node. Ground aliases (`"0"`, `"gnd"`,
    /// `"GND"`, case-insensitive) return [`Node::GROUND`].
    pub fn node(&mut self, name: &str) -> Node {
        if name == "0" || name.eq_ignore_ascii_case("gnd") {
            return Node::GROUND;
        }
        if let Some(&i) = self.name_to_node.get(name) {
            return Node::new(i);
        }
        let i = self.node_names.len();
        self.node_names.push(name.to_owned());
        self.name_to_node.insert(name.to_owned(), i);
        Node::new(i)
    }

    /// Adds a device.
    pub fn add(&mut self, device: impl Into<Device>) -> &mut Self {
        self.devices.push(device.into());
        self
    }

    /// Number of devices added so far.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Finalizes the circuit: validates names and connectivity, assigns
    /// branch-current unknowns.
    ///
    /// # Errors
    ///
    /// * [`BuildCircuitError::Empty`] if no devices were added,
    /// * [`BuildCircuitError::DuplicateDeviceName`] on a name collision,
    /// * [`BuildCircuitError::DanglingNode`] if an interned node is used by
    ///   no device.
    pub fn build(self) -> Result<Circuit, BuildCircuitError> {
        if self.devices.is_empty() {
            return Err(BuildCircuitError::Empty);
        }
        let mut seen = HashMap::new();
        for d in &self.devices {
            if seen.insert(d.name().to_ascii_lowercase(), ()).is_some() {
                return Err(BuildCircuitError::DuplicateDeviceName {
                    name: d.name().into(),
                });
            }
        }
        // Connectivity: every interned node must appear on some device.
        let mut used = vec![false; self.node_names.len()];
        for d in &self.devices {
            for n in d.nodes() {
                if let Some(i) = n.index() {
                    used[i] = true;
                }
            }
        }
        // Controlled sources report no nodes via `nodes()`; mark everything
        // used if any are present (they reference nodes internally).
        let has_opaque = self.devices.iter().any(|d| {
            matches!(
                d,
                Device::Vcvs(_) | Device::Vccs(_) | Device::Cccs(_) | Device::Ccvs(_)
            )
        });
        if !has_opaque {
            if let Some(i) = used.iter().position(|u| !u) {
                return Err(BuildCircuitError::DanglingNode {
                    name: self.node_names[i].clone(),
                });
            }
        }

        let mut devices = self.devices;
        let num_nodes = self.node_names.len();
        let mut next_branch = num_nodes;
        for d in &mut devices {
            if d.branch_count() > 0 {
                d.set_branch(next_branch);
                next_branch += 1;
            }
        }
        // Resolve current-controlled sources against voltage-source branches.
        let vsrc_branches: HashMap<String, usize> = devices
            .iter()
            .filter_map(|d| match d {
                Device::Vsource(v) => Some((v.name().to_ascii_lowercase(), v.branch())),
                _ => None,
            })
            .collect();
        for d in &mut devices {
            let (element, source) = match d {
                Device::Cccs(f) => (f.name().to_owned(), f.ctrl_source().to_ascii_lowercase()),
                Device::Ccvs(h) => (h.name().to_owned(), h.ctrl_source().to_ascii_lowercase()),
                _ => continue,
            };
            match vsrc_branches.get(&source) {
                Some(&br) => match d {
                    Device::Cccs(f) => f.set_ctrl_branch(br),
                    Device::Ccvs(h) => h.set_ctrl_branch(br),
                    _ => unreachable!(),
                },
                None => return Err(BuildCircuitError::UnknownControlSource { element, source }),
            }
        }
        Ok(Circuit::from_parts(
            self.title,
            self.node_names,
            self.name_to_node,
            devices,
            next_branch - num_nodes,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlpta_devices::{Resistor, Vsource};

    #[test]
    fn node_interning_is_stable() {
        let mut b = CircuitBuilder::new("t");
        let a = b.node("a");
        let a2 = b.node("a");
        let c = b.node("c");
        assert_eq!(a, a2);
        assert_ne!(a, c);
    }

    #[test]
    fn ground_aliases() {
        let mut b = CircuitBuilder::new("t");
        assert!(b.node("0").is_ground());
        assert!(b.node("gnd").is_ground());
        assert!(b.node("GND").is_ground());
        assert!(b.node("Gnd").is_ground());
        assert!(!b.node("ground1").is_ground());
    }

    #[test]
    fn empty_circuit_rejected() {
        let b = CircuitBuilder::new("t");
        assert_eq!(b.build().unwrap_err(), BuildCircuitError::Empty);
    }

    #[test]
    fn duplicate_names_rejected_case_insensitive() {
        let mut b = CircuitBuilder::new("t");
        let n = b.node("a");
        b.add(Resistor::new("R1", n, Node::GROUND, 1.0));
        b.add(Resistor::new("r1", n, Node::GROUND, 2.0));
        assert!(matches!(
            b.build(),
            Err(BuildCircuitError::DuplicateDeviceName { .. })
        ));
    }

    #[test]
    fn dangling_node_rejected() {
        let mut b = CircuitBuilder::new("t");
        let a = b.node("a");
        let _orphan = b.node("orphan");
        b.add(Resistor::new("R1", a, Node::GROUND, 1.0));
        assert!(matches!(
            b.build(),
            Err(BuildCircuitError::DanglingNode { .. })
        ));
    }

    #[test]
    fn branches_assigned_after_nodes() {
        let mut b = CircuitBuilder::new("t");
        let a = b.node("a");
        let c = b.node("c");
        b.add(Vsource::new("V1", a, Node::GROUND, 1.0));
        b.add(Resistor::new("R1", a, c, 1.0));
        b.add(Vsource::new("V2", c, Node::GROUND, 2.0));
        let circuit = b.build().unwrap();
        assert_eq!(circuit.num_nodes(), 2);
        assert_eq!(circuit.num_branches(), 2);
        assert_eq!(circuit.dim(), 4);
    }

    #[test]
    fn error_display() {
        let e = BuildCircuitError::DuplicateDeviceName { name: "R1".into() };
        assert!(e.to_string().contains("R1"));
    }
}
