//! Property-based tests for circuit construction and MNA assembly.

use proptest::prelude::*;
use rlpta_devices::{EvalCtx, Isource, Node, Resistor, Vsource};
use rlpta_linalg::Triplet;
use rlpta_mna::{CircuitBuilder, CircuitFeatures};

proptest! {
    /// A resistor-network assembly produces a symmetric Jacobian (resistor
    /// stamps are reciprocal).
    #[test]
    fn resistor_network_jacobian_is_symmetric(
        edges in proptest::collection::vec((0usize..6, 0usize..6, 1.0f64..1e5), 1..15),
    ) {
        let mut b = CircuitBuilder::new("net");
        let nodes: Vec<Node> = (0..6).map(|i| b.node(&format!("n{i}"))).collect();
        let mut added = 0;
        for (k, (i, j, r)) in edges.iter().enumerate() {
            if i != j {
                b.add(Resistor::new(format!("R{k}"), nodes[*i], nodes[*j], *r));
                added += 1;
            }
        }
        // Ground every node through a large resistor so nothing dangles.
        for (i, n) in nodes.iter().enumerate() {
            b.add(Resistor::new(format!("RG{i}"), *n, Node::GROUND, 1e6));
        }
        prop_assume!(added > 0);
        let c = b.build().expect("builds");
        let x = vec![0.0; c.dim()];
        let ctx = EvalCtx::dc(&x);
        let (jac, _) = c.assemble(&ctx);
        let m = jac.to_csr();
        for r in 0..c.dim() {
            for col in 0..c.dim() {
                let a = m.get(r, col);
                let bb = m.get(col, r);
                prop_assert!((a - bb).abs() <= 1e-12 * a.abs().max(1.0), "asymmetry at ({r},{col})");
            }
        }
    }

    /// The KCL residual at any operating point equals J·x for a linear
    /// resistive circuit with no sources (F(x) = G·x).
    #[test]
    fn linear_residual_equals_jacobian_times_x(
        x_vals in proptest::collection::vec(-5.0f64..5.0, 4),
    ) {
        let mut b = CircuitBuilder::new("lin");
        let n: Vec<Node> = (0..4).map(|i| b.node(&format!("n{i}"))).collect();
        b.add(Resistor::new("R0", n[0], n[1], 1e3));
        b.add(Resistor::new("R1", n[1], n[2], 2e3));
        b.add(Resistor::new("R2", n[2], n[3], 3e3));
        for (i, node) in n.iter().enumerate() {
            b.add(Resistor::new(format!("RG{i}"), *node, Node::GROUND, 1e4));
        }
        let c = b.build().expect("builds");
        let ctx = EvalCtx::dc(&x_vals);
        let (jac, res) = c.assemble(&ctx);
        let jx = jac.to_csr().matvec(&x_vals);
        for (a, bb) in res.iter().zip(&jx) {
            prop_assert!((a - bb).abs() < 1e-12 * (1.0 + bb.abs()), "{a} vs {bb}");
        }
    }

    /// Branch unknowns always follow node unknowns and device/branch counts
    /// are consistent.
    #[test]
    fn dimension_bookkeeping(nv in 1usize..6, nr in 1usize..6) {
        let mut b = CircuitBuilder::new("dims");
        let first = b.node("x0");
        for i in 0..nv {
            let n = b.node(&format!("x{i}"));
            b.add(Vsource::new(format!("V{i}"), n, Node::GROUND, i as f64));
        }
        for i in 0..nr {
            let n = b.node(&format!("x{}", i % nv.max(1)));
            b.add(Resistor::new(format!("R{i}"), n, first, 1e3 + i as f64));
        }
        // `first` aliases x0, used by resistors; keep one extra to ground.
        b.add(Resistor::new("RG", first, Node::GROUND, 1e3));
        let c = b.build().expect("builds");
        prop_assert_eq!(c.num_branches(), nv);
        prop_assert_eq!(c.dim(), c.num_nodes() + nv);
        prop_assert_eq!(c.devices().len(), nv + nr + 1);
    }

    /// Feature extraction counts exactly what was inserted.
    #[test]
    fn feature_counts_match_insertions(nr in 0usize..8, ni in 0usize..4) {
        let mut b = CircuitBuilder::new("feat");
        let a = b.node("a");
        b.add(Vsource::new("V0", a, Node::GROUND, 1.0));
        for i in 0..nr {
            b.add(Resistor::new(format!("R{i}"), a, Node::GROUND, 1e3));
        }
        for i in 0..ni {
            b.add(Isource::new(format!("I{i}"), Node::GROUND, a, 1e-3));
        }
        let c = b.build().expect("builds");
        let f = CircuitFeatures::extract(&c);
        prop_assert_eq!(f.num_resistors, nr);
        prop_assert_eq!(f.num_isources, ni);
        prop_assert_eq!(f.num_vsources, 1);
        prop_assert_eq!(f.num_nodes, 1);
    }

    /// Re-assembly into reused buffers is idempotent.
    #[test]
    fn assembly_is_idempotent(v in -10.0f64..10.0) {
        let mut b = CircuitBuilder::new("idem");
        let a = b.node("a");
        b.add(Vsource::new("V", a, Node::GROUND, v));
        b.add(Resistor::new("R", a, Node::GROUND, 1e3));
        let c = b.build().expect("builds");
        let x = vec![0.5, 0.1];
        let ctx = EvalCtx::dc(&x);
        let mut jac = Triplet::new(c.dim(), c.dim());
        let mut res = vec![0.0; c.dim()];
        let mut st = c.new_state();
        c.assemble_into(&ctx, &mut jac, &mut res, &mut st);
        let first_res = res.clone();
        let first_jac = jac.to_csr();
        c.assemble_into(&ctx, &mut jac, &mut res, &mut st);
        prop_assert_eq!(&res, &first_res);
        prop_assert_eq!(jac.to_csr(), first_jac);
    }
}
