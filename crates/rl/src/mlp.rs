//! Dense multi-layer perceptron with exact analytic backpropagation.
//!
//! Two parallel execution paths share one parameter layout:
//!
//! * the original per-sample **scalar reference** ([`Mlp::forward`],
//!   [`Mlp::forward_cached`], [`Mlp::backward`]) — simple, allocation-heavy,
//!   kept as the ground truth the batched kernels are property-tested
//!   against;
//! * the **batched zero-allocation** path ([`Mlp::forward_batch_into`],
//!   [`Mlp::backward_batch_into`], [`Mlp::forward_into`]) — one GEMM per
//!   layer over a whole `[batch × dim]` minibatch into preallocated
//!   [`BatchCache`] storage, the hot path of TD3 training and of the
//!   per-PTA-step policy inference.

use crate::kernel::{self, ActScratch, BatchCache};
use rand::Rng;

/// Activation function applied between layers or at the output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activation {
    /// Identity.
    Linear,
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent (used by the TD3 actor output to bound actions).
    Tanh,
}

impl Activation {
    fn apply(self, z: f64) -> f64 {
        match self {
            Activation::Linear => z,
            Activation::Relu => z.max(0.0),
            Activation::Tanh => z.tanh(),
        }
    }

    /// Derivative expressed through the *post-activation* value `a = f(z)`,
    /// which is what the backward pass has cached.
    fn deriv_from_output(self, a: f64) -> f64 {
        match self {
            Activation::Linear => 1.0,
            Activation::Relu => {
                if a > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - a * a,
        }
    }
}

/// Forward-pass cache needed by [`Mlp::backward`]: the input and every
/// layer's post-activation output.
#[derive(Debug, Clone)]
pub struct ForwardCache {
    activations: Vec<Vec<f64>>,
}

impl ForwardCache {
    /// The network output this cache was produced with.
    pub fn output(&self) -> &[f64] {
        self.activations
            .last()
            .expect("cache has at least the input")
    }
}

/// A dense MLP with ReLU hidden layers, a configurable output activation and
/// flat parameter storage (weights then bias per layer), which makes Adam
/// steps and Polyak target updates trivial.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    dims: Vec<usize>,
    output: Activation,
    params: Vec<f64>,
}

impl Mlp {
    /// Creates a network with layer widths `dims` (`[input, h1, …, output]`)
    /// and the given output activation, Xavier-initialized from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dims are given or any dim is zero.
    pub fn new(dims: &[usize], output: Activation, rng: &mut impl Rng) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        assert!(dims.iter().all(|&d| d > 0), "zero-width layer");
        let mut params = Vec::with_capacity(Self::count_params(dims));
        for l in 0..dims.len() - 1 {
            let (fan_in, fan_out) = (dims[l], dims[l + 1]);
            let scale = (6.0 / (fan_in + fan_out) as f64).sqrt();
            for _ in 0..fan_in * fan_out {
                params.push(rng.gen_range(-scale..scale));
            }
            params.extend(std::iter::repeat_n(0.0, fan_out));
        }
        Self {
            dims: dims.to_vec(),
            output,
            params,
        }
    }

    /// Creates a zero-initialized network (used when loading parameters
    /// from storage).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dims are given or any dim is zero.
    pub fn zeroed(dims: &[usize], output: Activation) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        assert!(dims.iter().all(|&d| d > 0), "zero-width layer");
        Self {
            dims: dims.to_vec(),
            output,
            params: vec![0.0; Self::count_params(dims)],
        }
    }

    fn count_params(dims: &[usize]) -> usize {
        dims.windows(2).map(|w| w[0] * w[1] + w[1]).sum()
    }

    /// The layer widths (`[input, hidden…, output]`).
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The output activation.
    pub fn output_activation(&self) -> Activation {
        self.output
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.dims[0]
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        *self.dims.last().expect("dims nonempty")
    }

    /// Number of parameters.
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// Borrows the flat parameter vector.
    pub fn params(&self) -> &[f64] {
        &self.params
    }

    /// Mutably borrows the flat parameter vector (used by the optimizer).
    pub fn params_mut(&mut self) -> &mut [f64] {
        &mut self.params
    }

    /// Polyak/soft update: `θ ← τ·θ_src + (1−τ)·θ`.
    ///
    /// # Panics
    ///
    /// Panics if the two networks have different shapes.
    pub fn soft_update_from(&mut self, src: &Mlp, tau: f64) {
        assert_eq!(self.dims, src.dims, "shape mismatch in soft update");
        kernel::blend(&mut self.params, &src.params, tau);
    }

    /// Copies all parameters from `src` (hard target sync).
    ///
    /// # Panics
    ///
    /// Panics if the two networks have different shapes.
    pub fn copy_from(&mut self, src: &Mlp) {
        assert_eq!(self.dims, src.dims, "shape mismatch in copy");
        self.params.copy_from_slice(&src.params);
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.input_dim()`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        self.forward_cached(x).output().to_vec()
    }

    /// Forward pass that retains per-layer activations for
    /// [`Mlp::backward`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.input_dim()`.
    pub fn forward_cached(&self, x: &[f64]) -> ForwardCache {
        assert_eq!(x.len(), self.input_dim(), "input dimension mismatch");
        let n_layers = self.dims.len() - 1;
        let mut activations = Vec::with_capacity(n_layers + 1);
        activations.push(x.to_vec());
        let mut offset = 0;
        for l in 0..n_layers {
            let (fan_in, fan_out) = (self.dims[l], self.dims[l + 1]);
            let w = &self.params[offset..offset + fan_in * fan_out];
            let b = &self.params[offset + fan_in * fan_out..offset + fan_in * fan_out + fan_out];
            offset += fan_in * fan_out + fan_out;
            let act = if l == n_layers - 1 {
                self.output
            } else {
                Activation::Relu
            };
            let prev = &activations[l];
            let mut out = Vec::with_capacity(fan_out);
            for i in 0..fan_out {
                let mut z = b[i];
                let row = &w[i * fan_in..(i + 1) * fan_in];
                for (wij, aj) in row.iter().zip(prev) {
                    z += wij * aj;
                }
                out.push(act.apply(z));
            }
            activations.push(out);
        }
        ForwardCache { activations }
    }

    /// Backward pass: given `∂L/∂output`, accumulates `∂L/∂θ` into `grads`
    /// (same layout/length as [`Mlp::params`]) and returns `∂L/∂input`.
    ///
    /// # Panics
    ///
    /// Panics if `grads.len() != self.num_params()` or the gradient length
    /// does not match the output dimension.
    pub fn backward(
        &self,
        cache: &ForwardCache,
        grad_output: &[f64],
        grads: &mut [f64],
    ) -> Vec<f64> {
        assert_eq!(grads.len(), self.num_params(), "gradient buffer mismatch");
        assert_eq!(
            grad_output.len(),
            self.output_dim(),
            "output gradient mismatch"
        );
        let n_layers = self.dims.len() - 1;

        // Layer parameter offsets.
        let mut offsets = Vec::with_capacity(n_layers);
        let mut off = 0;
        for l in 0..n_layers {
            offsets.push(off);
            off += self.dims[l] * self.dims[l + 1] + self.dims[l + 1];
        }

        let mut g = grad_output.to_vec();
        for l in (0..n_layers).rev() {
            let (fan_in, fan_out) = (self.dims[l], self.dims[l + 1]);
            let act = if l == n_layers - 1 {
                self.output
            } else {
                Activation::Relu
            };
            let a_out = &cache.activations[l + 1];
            let a_in = &cache.activations[l];
            // δ = g ⊙ f'(z), with f' recovered from the cached output.
            let delta: Vec<f64> = g
                .iter()
                .zip(a_out)
                .map(|(gi, ai)| gi * act.deriv_from_output(*ai))
                .collect();
            let w_off = offsets[l];
            let b_off = w_off + fan_in * fan_out;
            for i in 0..fan_out {
                let di = delta[i];
                if di != 0.0 {
                    let row = &mut grads[w_off + i * fan_in..w_off + (i + 1) * fan_in];
                    for (gw, aj) in row.iter_mut().zip(a_in) {
                        *gw += di * aj;
                    }
                }
                grads[b_off + i] += di;
            }
            // Propagate to the previous layer: g_prev[j] = Σ_i W[i,j]·δ[i].
            let w = &self.params[w_off..w_off + fan_in * fan_out];
            let mut g_prev = vec![0.0; fan_in];
            for i in 0..fan_out {
                let di = delta[i];
                if di != 0.0 {
                    let row = &w[i * fan_in..(i + 1) * fan_in];
                    for (j, wij) in row.iter().enumerate() {
                        g_prev[j] += wij * di;
                    }
                }
            }
            g = g_prev;
        }
        g
    }

    /// Flat-parameter offset of layer `l`'s weight block (its bias block
    /// follows at `offset + fan_in·fan_out`). `O(L)` with no allocation —
    /// the networks here are three layers deep.
    fn layer_offset(&self, l: usize) -> usize {
        self.dims
            .windows(2)
            .take(l)
            .map(|w| w[0] * w[1] + w[1])
            .sum()
    }

    /// Zero-allocation single-sample forward pass into `out`, ping-ponging
    /// activations through `scratch`. Each layer is a one-row
    /// [`kernel::gemm_nt`] — literally the batched kernel with `m = 1` —
    /// so its result is bit-identical to the corresponding row of any
    /// batched pass (the property the frozen stepping-policy tests rely
    /// on), and single-row inference gets the same four-column register
    /// blocking as training.
    ///
    /// # Panics
    ///
    /// Panics if `x`/`out` lengths disagree with the network shape or the
    /// scratch is narrower than the widest layer.
    pub fn forward_into(&self, x: &[f64], out: &mut [f64], scratch: &mut ActScratch) {
        assert_eq!(x.len(), self.input_dim(), "input dimension mismatch");
        assert_eq!(out.len(), self.output_dim(), "output buffer mismatch");
        let widest = self.dims.iter().copied().max().unwrap_or(1);
        assert!(scratch.width() >= widest, "scratch narrower than network");
        let n_layers = self.dims.len() - 1;
        let ActScratch { a, b } = scratch;
        let (mut cur, mut nxt) = (&mut a[..], &mut b[..]);
        cur[..x.len()].copy_from_slice(x);
        let mut offset = 0;
        for l in 0..n_layers {
            let (fan_in, fan_out) = (self.dims[l], self.dims[l + 1]);
            let w = &self.params[offset..offset + fan_in * fan_out];
            let bias = &self.params[offset + fan_in * fan_out..offset + fan_in * fan_out + fan_out];
            offset += fan_in * fan_out + fan_out;
            let act = if l == n_layers - 1 {
                self.output
            } else {
                Activation::Relu
            };
            kernel::gemm_nt(&mut nxt[..fan_out], &cur[..fan_in], w, 1, fan_in, fan_out);
            for (z, &bi) in nxt[..fan_out].iter_mut().zip(bias) {
                *z = act.apply(*z + bi);
            }
            std::mem::swap(&mut cur, &mut nxt);
        }
        out.copy_from_slice(&cur[..self.output_dim()]);
    }

    /// Batched forward pass: `batch` row-major input rows in `x` flow
    /// through one [`kernel::gemm_nt`] per layer into `cache`'s
    /// preallocated activation slabs. Zero heap allocations. Retrieve the
    /// output rows with [`BatchCache::output`]; the cache then feeds
    /// [`Mlp::backward_batch_into`].
    ///
    /// # Panics
    ///
    /// Panics if the cache was shaped for different dims, `batch` exceeds
    /// its capacity, or `x` is shorter than `batch × input_dim`.
    pub fn forward_batch_into(&self, x: &[f64], batch: usize, cache: &mut BatchCache) {
        assert_eq!(cache.dims(), self.dims.as_slice(), "cache shape mismatch");
        assert!(batch <= cache.max_batch(), "batch exceeds cache capacity");
        assert!(
            x.len() >= batch * self.input_dim(),
            "input slab shorter than batch"
        );
        let n_layers = self.dims.len() - 1;
        let (acts, _, _) = cache.parts_mut();
        acts[0][..batch * self.dims[0]].copy_from_slice(&x[..batch * self.dims[0]]);
        let mut offset = 0;
        for l in 0..n_layers {
            let (fan_in, fan_out) = (self.dims[l], self.dims[l + 1]);
            let w = &self.params[offset..offset + fan_in * fan_out];
            let bias = &self.params[offset + fan_in * fan_out..offset + fan_in * fan_out + fan_out];
            offset += fan_in * fan_out + fan_out;
            let act = if l == n_layers - 1 {
                self.output
            } else {
                Activation::Relu
            };
            let (lo, hi) = acts.split_at_mut(l + 1);
            let prev = &lo[l][..batch * fan_in];
            let out = &mut hi[0];
            kernel::gemm_nt(out, prev, w, batch, fan_in, fan_out);
            for row in out[..batch * fan_out].chunks_exact_mut(fan_out) {
                for (z, &bi) in row.iter_mut().zip(bias) {
                    *z = act.apply(*z + bi);
                }
            }
        }
    }

    /// Batched backward pass over the activations a prior
    /// [`Mlp::forward_batch_into`] left in `cache`: given `batch` rows of
    /// `∂L/∂output` (row-major, summed-over-batch semantics identical to
    /// calling the scalar [`Mlp::backward`] once per row), accumulates
    /// `∂L/∂θ` into `grads` and writes the `[batch × input_dim]` input
    /// gradients into `grad_input`. One [`kernel::gemm_tn_acc`] +
    /// [`kernel::gemm_nn`] pair per layer, zero heap allocations.
    ///
    /// # Panics
    ///
    /// Panics on any shape mismatch between the network, cache and buffers.
    pub fn backward_batch_into(
        &self,
        cache: &mut BatchCache,
        batch: usize,
        grad_output: &[f64],
        grads: &mut [f64],
        grad_input: &mut [f64],
    ) {
        assert_eq!(cache.dims(), self.dims.as_slice(), "cache shape mismatch");
        assert!(batch <= cache.max_batch(), "batch exceeds cache capacity");
        assert_eq!(grads.len(), self.num_params(), "gradient buffer mismatch");
        assert!(
            grad_output.len() >= batch * self.output_dim(),
            "output gradient slab shorter than batch"
        );
        assert!(
            grad_input.len() >= batch * self.input_dim(),
            "input gradient slab shorter than batch"
        );
        let n_layers = self.dims.len() - 1;
        let (acts, delta_a, delta_b) = cache.parts_mut();
        let (mut g, mut g_next) = (&mut delta_a[..], &mut delta_b[..]);
        g[..batch * self.output_dim()]
            .copy_from_slice(&grad_output[..batch * self.output_dim()]);
        for l in (0..n_layers).rev() {
            let (fan_in, fan_out) = (self.dims[l], self.dims[l + 1]);
            let act = if l == n_layers - 1 {
                self.output
            } else {
                Activation::Relu
            };
            let a_out = &acts[l + 1][..batch * fan_out];
            let a_in = &acts[l][..batch * fan_in];
            // δ = g ⊙ f'(z), in place, with f' recovered from the output.
            for (gi, ai) in g[..batch * fan_out].iter_mut().zip(a_out) {
                *gi *= act.deriv_from_output(*ai);
            }
            let delta = &g[..batch * fan_out];
            let w_off = self.layer_offset(l);
            let b_off = w_off + fan_in * fan_out;
            // Weight gradients: Gw += δᵀ · A_in.
            kernel::gemm_tn_acc(
                &mut grads[w_off..b_off],
                delta,
                a_in,
                batch,
                fan_out,
                fan_in,
            );
            // Bias gradients: column sums of δ.
            for row in delta.chunks_exact(fan_out) {
                for (gb, di) in grads[b_off..b_off + fan_out].iter_mut().zip(row) {
                    *gb += di;
                }
            }
            // Propagate: G_prev = δ · W.
            let w = &self.params[w_off..b_off];
            let dest = if l == 0 { &mut grad_input[..] } else { &mut g_next[..] };
            kernel::gemm_nn(dest, delta, w, batch, fan_out, fan_in);
            if l != 0 {
                std::mem::swap(&mut g, &mut g_next);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1234)
    }

    #[test]
    fn shapes_and_param_count() {
        let m = Mlp::new(&[3, 8, 2], Activation::Tanh, &mut rng());
        assert_eq!(m.input_dim(), 3);
        assert_eq!(m.output_dim(), 2);
        assert_eq!(m.num_params(), 3 * 8 + 8 + 8 * 2 + 2);
        assert_eq!(m.forward(&[0.0, 0.0, 0.0]).len(), 2);
    }

    #[test]
    fn tanh_output_is_bounded() {
        let m = Mlp::new(&[2, 16, 1], Activation::Tanh, &mut rng());
        for x in [-100.0, -1.0, 0.0, 1.0, 100.0] {
            let y = m.forward(&[x, -x])[0];
            assert!((-1.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn forward_is_deterministic() {
        let m = Mlp::new(&[4, 8, 3], Activation::Linear, &mut rng());
        let x = [0.3, -0.2, 0.9, 0.0];
        assert_eq!(m.forward(&x), m.forward(&x));
    }

    #[test]
    fn gradient_check_parameters() {
        // Analytic ∂L/∂θ vs central finite differences, L = Σ output².
        let mut m = Mlp::new(&[3, 6, 5, 2], Activation::Tanh, &mut rng());
        let x = [0.5, -0.3, 0.8];
        let loss = |m: &Mlp| -> f64 { m.forward(&x).iter().map(|v| v * v).sum() };

        let cache = m.forward_cached(&x);
        let grad_out: Vec<f64> = cache.output().iter().map(|v| 2.0 * v).collect();
        let mut grads = vec![0.0; m.num_params()];
        m.backward(&cache, &grad_out, &mut grads);

        let h = 1e-6;
        for k in (0..m.num_params()).step_by(7) {
            let orig = m.params()[k];
            m.params_mut()[k] = orig + h;
            let lp = loss(&m);
            m.params_mut()[k] = orig - h;
            let lm = loss(&m);
            m.params_mut()[k] = orig;
            let fd = (lp - lm) / (2.0 * h);
            assert!(
                (fd - grads[k]).abs() < 1e-5 * (1.0 + fd.abs()),
                "param {k}: fd {fd} vs analytic {}",
                grads[k]
            );
        }
    }

    #[test]
    fn gradient_check_inputs() {
        // ∂L/∂x via backward's return value.
        let m = Mlp::new(&[4, 8, 1], Activation::Linear, &mut rng());
        let x = [0.1, 0.7, -0.4, 0.2];
        let cache = m.forward_cached(&x);
        let mut grads = vec![0.0; m.num_params()];
        let gx = m.backward(&cache, &[1.0], &mut grads);

        let h = 1e-6;
        for k in 0..x.len() {
            let mut xp = x;
            xp[k] += h;
            let mut xm = x;
            xm[k] -= h;
            let fd = (m.forward(&xp)[0] - m.forward(&xm)[0]) / (2.0 * h);
            assert!(
                (fd - gx[k]).abs() < 1e-6 * (1.0 + fd.abs()),
                "input {k}: {fd} vs {}",
                gx[k]
            );
        }
    }

    #[test]
    fn soft_update_interpolates() {
        let a = Mlp::new(&[2, 4, 1], Activation::Linear, &mut rng());
        let mut b = a.clone();
        let mut src = a.clone();
        for p in src.params_mut() {
            *p += 1.0;
        }
        b.soft_update_from(&src, 0.25);
        for ((pa, pb), ps) in a.params().iter().zip(b.params()).zip(src.params()) {
            let expect = 0.25 * ps + 0.75 * pa;
            assert!((pb - expect).abs() < 1e-15);
        }
    }

    #[test]
    fn copy_from_syncs_exactly() {
        let a = Mlp::new(&[2, 3, 1], Activation::Tanh, &mut rng());
        let mut b = Mlp::new(&[2, 3, 1], Activation::Tanh, &mut StdRng::seed_from_u64(99));
        b.copy_from(&a);
        assert_eq!(a.params(), b.params());
    }

    #[test]
    #[should_panic(expected = "input dimension mismatch")]
    fn forward_validates_input() {
        let m = Mlp::new(&[3, 2], Activation::Linear, &mut rng());
        let _ = m.forward(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn soft_update_validates_shape() {
        let mut a = Mlp::new(&[2, 2], Activation::Linear, &mut rng());
        let b = Mlp::new(&[3, 2], Activation::Linear, &mut rng());
        a.soft_update_from(&b, 0.5);
    }

    fn batch_inputs(m: &Mlp, batch: usize) -> Vec<f64> {
        (0..batch * m.input_dim())
            .map(|i| ((i * 29 % 23) as f64 - 11.0) / 7.0)
            .collect()
    }

    #[test]
    fn batched_forward_matches_scalar_reference() {
        let m = Mlp::new(&[4, 9, 6, 3], Activation::Tanh, &mut rng());
        let batch = 17;
        let x = batch_inputs(&m, batch);
        let mut cache = BatchCache::for_mlp(&m, batch);
        m.forward_batch_into(&x, batch, &mut cache);
        for (r, row) in cache.output(batch).chunks_exact(m.output_dim()).enumerate() {
            let scalar = m.forward(&x[r * 4..(r + 1) * 4]);
            for (a, b) in row.iter().zip(&scalar) {
                assert!((a - b).abs() < 1e-12 * (1.0 + b.abs()), "row {r}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn forward_into_is_bitwise_a_batched_row() {
        let m = Mlp::new(&[5, 8, 2], Activation::Linear, &mut rng());
        let batch = 6;
        let x = batch_inputs(&m, batch);
        let mut cache = BatchCache::for_mlp(&m, batch);
        m.forward_batch_into(&x, batch, &mut cache);
        let mut scratch = ActScratch::for_mlp(&m);
        let mut out = vec![0.0; m.output_dim()];
        for (r, row) in cache.output(batch).chunks_exact(m.output_dim()).enumerate() {
            m.forward_into(&x[r * 5..(r + 1) * 5], &mut out, &mut scratch);
            assert_eq!(out.as_slice(), row, "row {r} not bit-identical");
        }
    }

    #[test]
    fn batched_backward_matches_scalar_reference() {
        let m = Mlp::new(&[3, 7, 4, 2], Activation::Tanh, &mut rng());
        let batch = 11;
        let x = batch_inputs(&m, batch);
        // Scalar reference: accumulate per-row backward passes.
        let mut ref_grads = vec![0.0; m.num_params()];
        let mut ref_gx = Vec::new();
        for r in 0..batch {
            let cache = m.forward_cached(&x[r * 3..(r + 1) * 3]);
            let go: Vec<f64> = cache.output().iter().map(|v| 0.3 - v).collect();
            ref_gx.extend(m.backward(&cache, &go, &mut ref_grads));
        }
        // Batched pass with the same per-row output gradients.
        let mut cache = BatchCache::for_mlp(&m, batch);
        m.forward_batch_into(&x, batch, &mut cache);
        let go: Vec<f64> = cache.output(batch).iter().map(|v| 0.3 - v).collect();
        let mut grads = vec![0.0; m.num_params()];
        let mut gx = vec![0.0; batch * m.input_dim()];
        m.backward_batch_into(&mut cache, batch, &go, &mut grads, &mut gx);
        for (k, (a, b)) in grads.iter().zip(&ref_grads).enumerate() {
            assert!((a - b).abs() < 1e-12 * (1.0 + b.abs()), "grad {k}: {a} vs {b}");
        }
        for (k, (a, b)) in gx.iter().zip(&ref_gx).enumerate() {
            assert!((a - b).abs() < 1e-12 * (1.0 + b.abs()), "gx {k}: {a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "cache shape mismatch")]
    fn batched_forward_validates_cache_shape() {
        let m = Mlp::new(&[3, 2], Activation::Linear, &mut rng());
        let mut cache = BatchCache::for_dims(&[4, 2], 2);
        m.forward_batch_into(&[0.0; 6], 2, &mut cache);
    }

    #[test]
    fn relu_hidden_layers_clip_negatives() {
        // A single hidden unit with forced negative pre-activation outputs 0.
        let mut m = Mlp::new(&[1, 1, 1], Activation::Linear, &mut rng());
        // layer0: w=1, b=-10 → z = x − 10 < 0 → relu = 0; layer1: w=5, b=3.
        let p = m.params_mut();
        p[0] = 1.0;
        p[1] = -10.0;
        p[2] = 5.0;
        p[3] = 3.0;
        assert_eq!(m.forward(&[1.0])[0], 3.0);
    }
}
