//! Dense multi-layer perceptron with exact analytic backpropagation.

use rand::Rng;

/// Activation function applied between layers or at the output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activation {
    /// Identity.
    Linear,
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent (used by the TD3 actor output to bound actions).
    Tanh,
}

impl Activation {
    fn apply(self, z: f64) -> f64 {
        match self {
            Activation::Linear => z,
            Activation::Relu => z.max(0.0),
            Activation::Tanh => z.tanh(),
        }
    }

    /// Derivative expressed through the *post-activation* value `a = f(z)`,
    /// which is what the backward pass has cached.
    fn deriv_from_output(self, a: f64) -> f64 {
        match self {
            Activation::Linear => 1.0,
            Activation::Relu => {
                if a > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - a * a,
        }
    }
}

/// Forward-pass cache needed by [`Mlp::backward`]: the input and every
/// layer's post-activation output.
#[derive(Debug, Clone)]
pub struct ForwardCache {
    activations: Vec<Vec<f64>>,
}

impl ForwardCache {
    /// The network output this cache was produced with.
    pub fn output(&self) -> &[f64] {
        self.activations
            .last()
            .expect("cache has at least the input")
    }
}

/// A dense MLP with ReLU hidden layers, a configurable output activation and
/// flat parameter storage (weights then bias per layer), which makes Adam
/// steps and Polyak target updates trivial.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    dims: Vec<usize>,
    output: Activation,
    params: Vec<f64>,
}

impl Mlp {
    /// Creates a network with layer widths `dims` (`[input, h1, …, output]`)
    /// and the given output activation, Xavier-initialized from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dims are given or any dim is zero.
    pub fn new(dims: &[usize], output: Activation, rng: &mut impl Rng) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        assert!(dims.iter().all(|&d| d > 0), "zero-width layer");
        let mut params = Vec::with_capacity(Self::count_params(dims));
        for l in 0..dims.len() - 1 {
            let (fan_in, fan_out) = (dims[l], dims[l + 1]);
            let scale = (6.0 / (fan_in + fan_out) as f64).sqrt();
            for _ in 0..fan_in * fan_out {
                params.push(rng.gen_range(-scale..scale));
            }
            params.extend(std::iter::repeat_n(0.0, fan_out));
        }
        Self {
            dims: dims.to_vec(),
            output,
            params,
        }
    }

    /// Creates a zero-initialized network (used when loading parameters
    /// from storage).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dims are given or any dim is zero.
    pub fn zeroed(dims: &[usize], output: Activation) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        assert!(dims.iter().all(|&d| d > 0), "zero-width layer");
        Self {
            dims: dims.to_vec(),
            output,
            params: vec![0.0; Self::count_params(dims)],
        }
    }

    fn count_params(dims: &[usize]) -> usize {
        dims.windows(2).map(|w| w[0] * w[1] + w[1]).sum()
    }

    /// The layer widths (`[input, hidden…, output]`).
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The output activation.
    pub fn output_activation(&self) -> Activation {
        self.output
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.dims[0]
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        *self.dims.last().expect("dims nonempty")
    }

    /// Number of parameters.
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// Borrows the flat parameter vector.
    pub fn params(&self) -> &[f64] {
        &self.params
    }

    /// Mutably borrows the flat parameter vector (used by the optimizer).
    pub fn params_mut(&mut self) -> &mut [f64] {
        &mut self.params
    }

    /// Polyak/soft update: `θ ← τ·θ_src + (1−τ)·θ`.
    ///
    /// # Panics
    ///
    /// Panics if the two networks have different shapes.
    pub fn soft_update_from(&mut self, src: &Mlp, tau: f64) {
        assert_eq!(self.dims, src.dims, "shape mismatch in soft update");
        for (t, s) in self.params.iter_mut().zip(&src.params) {
            *t = tau * s + (1.0 - tau) * *t;
        }
    }

    /// Copies all parameters from `src` (hard target sync).
    ///
    /// # Panics
    ///
    /// Panics if the two networks have different shapes.
    pub fn copy_from(&mut self, src: &Mlp) {
        assert_eq!(self.dims, src.dims, "shape mismatch in copy");
        self.params.copy_from_slice(&src.params);
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.input_dim()`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        self.forward_cached(x).output().to_vec()
    }

    /// Forward pass that retains per-layer activations for
    /// [`Mlp::backward`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.input_dim()`.
    pub fn forward_cached(&self, x: &[f64]) -> ForwardCache {
        assert_eq!(x.len(), self.input_dim(), "input dimension mismatch");
        let n_layers = self.dims.len() - 1;
        let mut activations = Vec::with_capacity(n_layers + 1);
        activations.push(x.to_vec());
        let mut offset = 0;
        for l in 0..n_layers {
            let (fan_in, fan_out) = (self.dims[l], self.dims[l + 1]);
            let w = &self.params[offset..offset + fan_in * fan_out];
            let b = &self.params[offset + fan_in * fan_out..offset + fan_in * fan_out + fan_out];
            offset += fan_in * fan_out + fan_out;
            let act = if l == n_layers - 1 {
                self.output
            } else {
                Activation::Relu
            };
            let prev = &activations[l];
            let mut out = Vec::with_capacity(fan_out);
            for i in 0..fan_out {
                let mut z = b[i];
                let row = &w[i * fan_in..(i + 1) * fan_in];
                for (wij, aj) in row.iter().zip(prev) {
                    z += wij * aj;
                }
                out.push(act.apply(z));
            }
            activations.push(out);
        }
        ForwardCache { activations }
    }

    /// Backward pass: given `∂L/∂output`, accumulates `∂L/∂θ` into `grads`
    /// (same layout/length as [`Mlp::params`]) and returns `∂L/∂input`.
    ///
    /// # Panics
    ///
    /// Panics if `grads.len() != self.num_params()` or the gradient length
    /// does not match the output dimension.
    pub fn backward(
        &self,
        cache: &ForwardCache,
        grad_output: &[f64],
        grads: &mut [f64],
    ) -> Vec<f64> {
        assert_eq!(grads.len(), self.num_params(), "gradient buffer mismatch");
        assert_eq!(
            grad_output.len(),
            self.output_dim(),
            "output gradient mismatch"
        );
        let n_layers = self.dims.len() - 1;

        // Layer parameter offsets.
        let mut offsets = Vec::with_capacity(n_layers);
        let mut off = 0;
        for l in 0..n_layers {
            offsets.push(off);
            off += self.dims[l] * self.dims[l + 1] + self.dims[l + 1];
        }

        let mut g = grad_output.to_vec();
        for l in (0..n_layers).rev() {
            let (fan_in, fan_out) = (self.dims[l], self.dims[l + 1]);
            let act = if l == n_layers - 1 {
                self.output
            } else {
                Activation::Relu
            };
            let a_out = &cache.activations[l + 1];
            let a_in = &cache.activations[l];
            // δ = g ⊙ f'(z), with f' recovered from the cached output.
            let delta: Vec<f64> = g
                .iter()
                .zip(a_out)
                .map(|(gi, ai)| gi * act.deriv_from_output(*ai))
                .collect();
            let w_off = offsets[l];
            let b_off = w_off + fan_in * fan_out;
            for i in 0..fan_out {
                let di = delta[i];
                if di != 0.0 {
                    let row = &mut grads[w_off + i * fan_in..w_off + (i + 1) * fan_in];
                    for (gw, aj) in row.iter_mut().zip(a_in) {
                        *gw += di * aj;
                    }
                }
                grads[b_off + i] += di;
            }
            // Propagate to the previous layer: g_prev[j] = Σ_i W[i,j]·δ[i].
            let w = &self.params[w_off..w_off + fan_in * fan_out];
            let mut g_prev = vec![0.0; fan_in];
            for i in 0..fan_out {
                let di = delta[i];
                if di != 0.0 {
                    let row = &w[i * fan_in..(i + 1) * fan_in];
                    for (j, wij) in row.iter().enumerate() {
                        g_prev[j] += wij * di;
                    }
                }
            }
            g = g_prev;
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1234)
    }

    #[test]
    fn shapes_and_param_count() {
        let m = Mlp::new(&[3, 8, 2], Activation::Tanh, &mut rng());
        assert_eq!(m.input_dim(), 3);
        assert_eq!(m.output_dim(), 2);
        assert_eq!(m.num_params(), 3 * 8 + 8 + 8 * 2 + 2);
        assert_eq!(m.forward(&[0.0, 0.0, 0.0]).len(), 2);
    }

    #[test]
    fn tanh_output_is_bounded() {
        let m = Mlp::new(&[2, 16, 1], Activation::Tanh, &mut rng());
        for x in [-100.0, -1.0, 0.0, 1.0, 100.0] {
            let y = m.forward(&[x, -x])[0];
            assert!((-1.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn forward_is_deterministic() {
        let m = Mlp::new(&[4, 8, 3], Activation::Linear, &mut rng());
        let x = [0.3, -0.2, 0.9, 0.0];
        assert_eq!(m.forward(&x), m.forward(&x));
    }

    #[test]
    fn gradient_check_parameters() {
        // Analytic ∂L/∂θ vs central finite differences, L = Σ output².
        let mut m = Mlp::new(&[3, 6, 5, 2], Activation::Tanh, &mut rng());
        let x = [0.5, -0.3, 0.8];
        let loss = |m: &Mlp| -> f64 { m.forward(&x).iter().map(|v| v * v).sum() };

        let cache = m.forward_cached(&x);
        let grad_out: Vec<f64> = cache.output().iter().map(|v| 2.0 * v).collect();
        let mut grads = vec![0.0; m.num_params()];
        m.backward(&cache, &grad_out, &mut grads);

        let h = 1e-6;
        for k in (0..m.num_params()).step_by(7) {
            let orig = m.params()[k];
            m.params_mut()[k] = orig + h;
            let lp = loss(&m);
            m.params_mut()[k] = orig - h;
            let lm = loss(&m);
            m.params_mut()[k] = orig;
            let fd = (lp - lm) / (2.0 * h);
            assert!(
                (fd - grads[k]).abs() < 1e-5 * (1.0 + fd.abs()),
                "param {k}: fd {fd} vs analytic {}",
                grads[k]
            );
        }
    }

    #[test]
    fn gradient_check_inputs() {
        // ∂L/∂x via backward's return value.
        let m = Mlp::new(&[4, 8, 1], Activation::Linear, &mut rng());
        let x = [0.1, 0.7, -0.4, 0.2];
        let cache = m.forward_cached(&x);
        let mut grads = vec![0.0; m.num_params()];
        let gx = m.backward(&cache, &[1.0], &mut grads);

        let h = 1e-6;
        for k in 0..x.len() {
            let mut xp = x;
            xp[k] += h;
            let mut xm = x;
            xm[k] -= h;
            let fd = (m.forward(&xp)[0] - m.forward(&xm)[0]) / (2.0 * h);
            assert!(
                (fd - gx[k]).abs() < 1e-6 * (1.0 + fd.abs()),
                "input {k}: {fd} vs {}",
                gx[k]
            );
        }
    }

    #[test]
    fn soft_update_interpolates() {
        let a = Mlp::new(&[2, 4, 1], Activation::Linear, &mut rng());
        let mut b = a.clone();
        let mut src = a.clone();
        for p in src.params_mut() {
            *p += 1.0;
        }
        b.soft_update_from(&src, 0.25);
        for ((pa, pb), ps) in a.params().iter().zip(b.params()).zip(src.params()) {
            let expect = 0.25 * ps + 0.75 * pa;
            assert!((pb - expect).abs() < 1e-15);
        }
    }

    #[test]
    fn copy_from_syncs_exactly() {
        let a = Mlp::new(&[2, 3, 1], Activation::Tanh, &mut rng());
        let mut b = Mlp::new(&[2, 3, 1], Activation::Tanh, &mut StdRng::seed_from_u64(99));
        b.copy_from(&a);
        assert_eq!(a.params(), b.params());
    }

    #[test]
    #[should_panic(expected = "input dimension mismatch")]
    fn forward_validates_input() {
        let m = Mlp::new(&[3, 2], Activation::Linear, &mut rng());
        let _ = m.forward(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn soft_update_validates_shape() {
        let mut a = Mlp::new(&[2, 2], Activation::Linear, &mut rng());
        let b = Mlp::new(&[3, 2], Activation::Linear, &mut rng());
        a.soft_update_from(&b, 0.5);
    }

    #[test]
    fn relu_hidden_layers_clip_negatives() {
        // A single hidden unit with forced negative pre-activation outputs 0.
        let mut m = Mlp::new(&[1, 1, 1], Activation::Linear, &mut rng());
        // layer0: w=1, b=-10 → z = x − 10 < 0 → relu = 0; layer1: w=5, b=3.
        let p = m.params_mut();
        p[0] = 1.0;
        p[1] = -10.0;
        p[2] = 5.0;
        p[3] = 3.0;
        assert_eq!(m.forward(&[1.0])[0], 3.0);
    }
}
