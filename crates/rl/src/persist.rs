//! Plain-text persistence for networks and agents.
//!
//! A deliberately simple, dependency-free line format (`f64` written with
//! enough digits to round-trip exactly) so pre-trained RL-S policies can be
//! shipped next to a netlist corpus and reloaded across sessions:
//!
//! ```text
//! mlp tanh 5 64 64 1
//! 1.2345678901234567e0
//! …one parameter per line…
//! ```

use crate::{Activation, Mlp, Td3Agent, Td3Config};
use std::io::{self, BufRead, Write};

fn activation_name(a: Activation) -> &'static str {
    match a {
        Activation::Linear => "linear",
        Activation::Relu => "relu",
        Activation::Tanh => "tanh",
    }
}

fn parse_activation(s: &str) -> io::Result<Activation> {
    match s {
        "linear" => Ok(Activation::Linear),
        "relu" => Ok(Activation::Relu),
        "tanh" => Ok(Activation::Tanh),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown activation `{other}`"),
        )),
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

impl Mlp {
    /// Writes the network (shape + parameters) as text.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn save_to(&self, w: &mut dyn Write) -> io::Result<()> {
        write!(w, "mlp {}", activation_name(self.output_activation()))?;
        for d in self.dims() {
            write!(w, " {d}")?;
        }
        writeln!(w)?;
        for p in self.params() {
            // 17 significant digits round-trip any f64 exactly.
            writeln!(w, "{p:.17e}")?;
        }
        Ok(())
    }

    /// Reads a network previously written by [`Mlp::save_to`].
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for malformed headers, wrong parameter counts
    /// or unparsable numbers, and propagates reader I/O errors.
    pub fn load_from(r: &mut dyn BufRead) -> io::Result<Mlp> {
        let mut header = String::new();
        r.read_line(&mut header)?;
        let mut parts = header.split_whitespace();
        if parts.next() != Some("mlp") {
            return Err(bad("missing `mlp` header"));
        }
        let act = parse_activation(parts.next().ok_or_else(|| bad("missing activation"))?)?;
        let dims: Vec<usize> = parts
            .map(|t| t.parse().map_err(|_| bad(format!("bad dim `{t}`"))))
            .collect::<io::Result<_>>()?;
        if dims.len() < 2 {
            return Err(bad("need at least two dims"));
        }
        let mut mlp = Mlp::zeroed(&dims, act);
        let n = mlp.num_params();
        let mut line = String::new();
        for i in 0..n {
            line.clear();
            if r.read_line(&mut line)? == 0 {
                return Err(bad(format!("expected {n} parameters, got {i}")));
            }
            let v: f64 = line
                .trim()
                .parse()
                .map_err(|_| bad(format!("bad parameter `{}`", line.trim())))?;
            mlp.params_mut()[i] = v;
        }
        Ok(mlp)
    }
}

impl Td3Agent {
    /// Writes all six networks (actor/critics and their targets) plus the
    /// training-step counter. Replay buffers are *not* persisted — a
    /// reloaded agent resumes with fresh experience, matching the paper's
    /// deployment model (policy ships, experience is per-simulation).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn save_to(&self, w: &mut dyn Write) -> io::Result<()> {
        writeln!(
            w,
            "td3 {} {} {}",
            self.config().state_dim,
            self.config().action_dim,
            self.train_steps()
        )?;
        for net in self.networks() {
            net.save_to(w)?;
        }
        Ok(())
    }

    /// Reads an agent written by [`Td3Agent::save_to`]. The `config`
    /// supplies hyper-parameters (learning rates, noise, …); its dimensions
    /// must match the stored networks.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on malformed content or dimension mismatch.
    pub fn load_from(config: Td3Config, r: &mut dyn BufRead) -> io::Result<Td3Agent> {
        let mut header = String::new();
        r.read_line(&mut header)?;
        let mut parts = header.split_whitespace();
        if parts.next() != Some("td3") {
            return Err(bad("missing `td3` header"));
        }
        let sd: usize = parts
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad("bad state dim"))?;
        let ad: usize = parts
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad("bad action dim"))?;
        let steps: u64 = parts
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad("bad step counter"))?;
        if sd != config.state_dim || ad != config.action_dim {
            return Err(bad(format!(
                "dimension mismatch: stored {sd}/{ad}, config {}/{}",
                config.state_dim, config.action_dim
            )));
        }
        let mut nets = Vec::with_capacity(6);
        for _ in 0..6 {
            nets.push(Mlp::load_from(r)?);
        }
        Td3Agent::from_networks(config, nets, steps).map_err(bad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::io::BufReader;

    #[test]
    fn mlp_roundtrips_exactly() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = Mlp::new(&[3, 8, 2], Activation::Tanh, &mut rng);
        let mut buf = Vec::new();
        m.save_to(&mut buf).unwrap();
        let back = Mlp::load_from(&mut BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(m.params(), back.params());
        assert_eq!(m.forward(&[0.1, 0.2, 0.3]), back.forward(&[0.1, 0.2, 0.3]));
    }

    #[test]
    fn mlp_rejects_truncated_input() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = Mlp::new(&[2, 2], Activation::Linear, &mut rng);
        let mut buf = Vec::new();
        m.save_to(&mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(Mlp::load_from(&mut BufReader::new(buf.as_slice())).is_err());
    }

    #[test]
    fn mlp_rejects_garbage_header() {
        let data = b"nonsense tanh 2 2\n";
        assert!(Mlp::load_from(&mut BufReader::new(&data[..])).is_err());
    }

    #[test]
    fn td3_roundtrips_policy() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut agent = Td3Agent::new(Td3Config::new(4, 1), &mut rng);
        // A little training so the networks differ from initialization.
        let batch = vec![crate::Transition {
            state: vec![0.1, -0.2, 0.3, 0.0],
            action: vec![0.5],
            reward: 1.0,
            next_state: vec![0.0, 0.0, 0.0, 0.1],
            done: false,
        }];
        for _ in 0..5 {
            agent.train_on_batch(&batch, &mut rng);
        }
        let mut buf = Vec::new();
        agent.save_to(&mut buf).unwrap();
        let back =
            Td3Agent::load_from(Td3Config::new(4, 1), &mut BufReader::new(buf.as_slice())).unwrap();
        let s = [0.3, 0.1, -0.5, 0.2];
        assert_eq!(agent.act(&s), back.act(&s));
        assert_eq!(agent.train_steps(), back.train_steps());
    }

    #[test]
    fn td3_rejects_dimension_mismatch() {
        let mut rng = StdRng::seed_from_u64(9);
        let agent = Td3Agent::new(Td3Config::new(4, 1), &mut rng);
        let mut buf = Vec::new();
        agent.save_to(&mut buf).unwrap();
        assert!(
            Td3Agent::load_from(Td3Config::new(5, 1), &mut BufReader::new(buf.as_slice())).is_err()
        );
    }
}
