//! TD-error prioritized experience replay (§4.4 of the paper).

use crate::{SumTree, Transition};
use rand::Rng;

/// Replay buffer whose sampling probability is proportional to each
/// transition's stored |TD-error| priority, backed by a [`SumTree`].
///
/// New transitions enter with the current maximum priority so they are
/// guaranteed to be replayed at least once; priorities are refreshed after
/// each critic update via [`PrioritizedReplay::update_priority`]. A small
/// floor keeps low-error samples alive, which is the paper's "does not
/// completely eliminate beneficial small-weight samples" property.
#[derive(Debug, Clone)]
pub struct PrioritizedReplay {
    tree: SumTree,
    items: Vec<Transition>,
    head: usize,
    max_priority: f64,
}

impl PrioritizedReplay {
    /// Priority floor added to every stored |TD-error|.
    pub const PRIORITY_FLOOR: f64 = 1e-3;

    /// Creates a buffer with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        Self {
            tree: SumTree::new(capacity),
            items: Vec::new(),
            head: 0,
            max_priority: 1.0,
        }
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Maximum number of transitions.
    pub fn capacity(&self) -> usize {
        self.tree.capacity()
    }

    /// Appends a transition at the current max priority, evicting FIFO when
    /// full.
    pub fn push(&mut self, t: Transition) {
        let idx = if self.items.len() < self.capacity() {
            self.items.push(t);
            self.items.len() - 1
        } else {
            let idx = self.head;
            self.items[idx] = t;
            self.head = (self.head + 1) % self.capacity();
            idx
        };
        self.tree.set(idx, self.max_priority);
    }

    /// Samples `n` transitions proportionally to priority (with
    /// replacement), returning `(buffer index, transition)` pairs so the
    /// caller can refresh priorities after training. Empty if the buffer is
    /// empty.
    ///
    /// Thin wrapper over [`PrioritizedReplay::sample_indices_into`] that
    /// clones each drawn transition; the training hot path samples indices
    /// and gathers straight into its workspace instead.
    pub fn sample(&self, n: usize, rng: &mut impl Rng) -> Vec<(usize, Transition)> {
        let mut idx = Vec::with_capacity(n);
        self.sample_indices_into(n, rng, &mut idx);
        idx.into_iter().map(|i| (i, self.items[i].clone())).collect()
    }

    /// Draws `n` priority-proportional slot indices into `out` (cleared
    /// first). Allocation-free once `out` has capacity `n`; an empty buffer
    /// leaves `out` empty. The caller gathers via [`PrioritizedReplay::get`]
    /// and refreshes priorities by index after training.
    pub fn sample_indices_into(&self, n: usize, rng: &mut impl Rng, out: &mut Vec<usize>) {
        out.clear();
        if self.items.is_empty() || self.tree.total() <= 0.0 {
            return;
        }
        out.extend((0..n).map(|_| {
            let v = rng.gen_range(0.0..self.tree.total());
            self.tree.find(v).min(self.items.len() - 1)
        }));
    }

    /// The transition in slot `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn get(&self, index: usize) -> &Transition {
        &self.items[index]
    }

    /// Refreshes the priority of buffer slot `index` with a new |TD-error|.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds or `td_error` is non-finite.
    pub fn update_priority(&mut self, index: usize, td_error: f64) {
        assert!(index < self.items.len(), "index out of bounds");
        assert!(td_error.is_finite(), "TD error must be finite");
        let p = td_error.abs() + Self::PRIORITY_FLOOR;
        self.max_priority = self.max_priority.max(p);
        self.tree.set(index, p);
    }

    /// Iterates over stored transitions in slot order.
    pub fn iter(&self) -> std::slice::Iter<'_, Transition> {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(r: f64) -> Transition {
        Transition {
            state: vec![r],
            action: vec![0.0],
            reward: r,
            next_state: vec![r],
            done: false,
        }
    }

    #[test]
    fn new_items_get_max_priority() {
        let mut b = PrioritizedReplay::new(4);
        b.push(t(0.0));
        b.update_priority(0, 10.0);
        b.push(t(1.0)); // must inherit the raised max priority
        let mut rng = StdRng::seed_from_u64(3);
        let hits = b.sample(1000, &mut rng);
        let n1 = hits.iter().filter(|(i, _)| *i == 1).count();
        // Slot 1 has priority ≈ slot 0's, so it is sampled often.
        assert!(n1 > 300, "new item undersampled: {n1}");
    }

    #[test]
    fn high_td_error_is_sampled_more() {
        let mut b = PrioritizedReplay::new(4);
        for i in 0..4 {
            b.push(t(i as f64));
        }
        for i in 0..4 {
            b.update_priority(i, if i == 2 { 10.0 } else { 0.01 });
        }
        let mut rng = StdRng::seed_from_u64(11);
        let hits = b.sample(2000, &mut rng);
        let n2 = hits.iter().filter(|(i, _)| *i == 2).count();
        assert!(n2 > 1700, "high-priority sample count {n2}");
    }

    #[test]
    fn low_priority_samples_still_appear() {
        // The floor keeps small-TD-error samples alive (paper §4.4).
        let mut b = PrioritizedReplay::new(2);
        b.push(t(0.0));
        b.push(t(1.0));
        b.update_priority(0, 0.0); // floor only
        b.update_priority(1, 1.0);
        let mut rng = StdRng::seed_from_u64(17);
        let hits = b.sample(20_000, &mut rng);
        let n0 = hits.iter().filter(|(i, _)| *i == 0).count();
        assert!(n0 > 0, "floored sample never drawn");
    }

    #[test]
    fn fifo_eviction_when_full() {
        let mut b = PrioritizedReplay::new(2);
        b.push(t(0.0));
        b.push(t(1.0));
        b.push(t(2.0)); // evicts slot 0
        assert_eq!(b.len(), 2);
        let rewards: Vec<f64> = b.iter().map(|x| x.reward).collect();
        assert!(rewards.contains(&2.0));
        assert!(!rewards.contains(&0.0));
    }

    #[test]
    fn empty_sample_is_empty() {
        let b = PrioritizedReplay::new(4);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(b.sample(5, &mut rng).is_empty());
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn update_validates_index() {
        let mut b = PrioritizedReplay::new(4);
        b.update_priority(0, 1.0);
    }
}
