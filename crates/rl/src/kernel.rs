//! Cache-blocked, row-major batched matmul micro-kernels and the
//! preallocated activation storage behind the batched [`Mlp`] paths.
//!
//! The three GEMM shapes below are exactly the ones one dense layer needs:
//!
//! * forward:       `Z[B×out]  = A[B×in] · W[out×in]ᵀ`   → [`gemm_nt`]
//! * input grads:   `Gx[B×in]  = Δ[B×out] · W[out×in]`   → [`gemm_nn`]
//! * weight grads:  `Gw[out×in] += Δ[B×out]ᵀ · A[B×in]`  → [`gemm_tn_acc`]
//!
//! All operands are dense row-major `&[f64]` slabs; nothing here allocates.
//! The shared `k` dimension is walked in [`KC`]-wide panels so panel
//! operands stay cache-resident, and every kernel register-blocks four
//! independent accumulation chains: [`gemm_nt`] computes four output
//! *columns* per pass over a left row (each column itself four-lane),
//! [`gemm_nn`]/[`gemm_tn_acc`] fold four rank-1 updates into each pass
//! over an output row (4× fewer load/store sweeps of the accumulator than
//! one-axpy-per-row).
//!
//! Every kernel exists twice via a `const FMA: bool` parameter: a portable
//! scalar build, and an `avx2,fma` build selected once per call through
//! `is_x86_feature_detected!`. The FMA build uses `f64::mul_add`, which
//! LLVM turns into 4-wide `vfmadd` under `#[target_feature]`; the fallback
//! sticks to mul-then-add so it never hits the libm `fma` soft fallback.
//! Fused results differ from unfused in final ulps, so kernel output is
//! reproducible per machine (and across thread counts), not across CPU
//! generations — the same caveat the rest of the engine carries for wall
//! times, and why the batched MLP paths are verified against the scalar
//! reference under a tight *relative* tolerance rather than bitwise
//! (see `crates/rl/tests/kernel_props.rs`).
//!
//! One order contract is bitwise, per machine: every [`gemm_nt`] output
//! element accumulates four lanes over `k` summed `(s0+s1)+(s2+s3)+tail`,
//! whether computed in a four-column block or alone, which keeps the
//! single-row inference path (a `m = 1` [`gemm_nt`]) bit-identical to the
//! matching batched row.

use crate::Mlp;

/// Depth-block size: the shared `k` dimension is walked in panels this
/// wide so both panel operands fit comfortably in L1/L2.
const KC: usize = 256;

/// `acc + x·y`, fused when the surrounding kernel was built for FMA.
#[inline(always)]
fn madd<const FMA: bool>(x: f64, y: f64, acc: f64) -> f64 {
    if FMA {
        x.mul_add(y, acc)
    } else {
        acc + x * y
    }
}

/// Whether the `avx2,fma` kernel builds are safe to call on this host.
#[inline]
fn fma_enabled() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// 256-bit wrappers for the `FMA = true` kernel builds. Lane for lane each
/// computes exactly what four [`madd::<true>`] calls compute — swapping
/// them in changes codegen, never numerics — but they guarantee 4-wide
/// `vfmadd`: LLVM's SLP pass was observed pairing the portable lane loops
/// into 128-bit ops at half throughput. Only reachable through the
/// feature-detected dispatch in the public kernels, which is what makes
/// executing AVX instructions sound; the `unsafe` blocks below discharge
/// the raw-pointer obligations locally via the `[f64; 4]` argument types.
#[cfg(target_arch = "x86_64")]
mod avx {
    #![allow(unsafe_code)]
    use std::arch::x86_64::{
        __m256d, _mm256_fmadd_pd, _mm256_loadu_pd, _mm256_set1_pd, _mm256_setzero_pd,
        _mm256_storeu_pd,
    };

    /// All four lanes zero.
    #[inline(always)]
    pub(super) fn zero() -> __m256d {
        // SAFETY: value-only intrinsic; the dispatch layer guarantees AVX.
        unsafe { _mm256_setzero_pd() }
    }

    /// `c` in every lane.
    #[inline(always)]
    pub(super) fn splat(c: f64) -> __m256d {
        // SAFETY: value-only intrinsic; the dispatch layer guarantees AVX.
        unsafe { _mm256_set1_pd(c) }
    }

    /// Lane-wise `acc + x·y`, fused.
    #[inline(always)]
    pub(super) fn fmadd(x: __m256d, y: __m256d, acc: __m256d) -> __m256d {
        // SAFETY: value-only intrinsic; the dispatch layer guarantees FMA.
        unsafe { _mm256_fmadd_pd(x, y, acc) }
    }

    /// The four values of `q` as lanes.
    #[inline(always)]
    pub(super) fn load4(q: &[f64; 4]) -> __m256d {
        // SAFETY: a `[f64; 4]` spans exactly the 32 bytes read; the
        // unaligned load form has no alignment requirement.
        unsafe { _mm256_loadu_pd(q.as_ptr()) }
    }

    /// Writes the lanes of `v` over `q`.
    #[inline(always)]
    pub(super) fn store4(q: &mut [f64; 4], v: __m256d) {
        // SAFETY: a `[f64; 4]` spans exactly the 32 bytes written.
        unsafe { _mm256_storeu_pd(q.as_mut_ptr(), v) }
    }
}

/// Extracts `s[at..at + 4]` as a fixed-size quad.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn quad(s: &[f64], at: usize) -> &[f64; 4] {
    s[at..at + 4].try_into().expect("quad")
}

/// Four-lane dot product of two equal-length slices. Lanes are summed
/// `(s0 + s1) + (s2 + s3)` plus a scalar tail — the exact per-element
/// order of one [`gemm_nt`] output column, which is what keeps the
/// single-row forward path bit-identical to a batched row.
#[inline(always)]
fn dot_impl<const FMA: bool>(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f64; 4];
    let mut ac = a.chunks_exact(4);
    let mut bc = b.chunks_exact(4);
    for (ca, cb) in (&mut ac).zip(&mut bc) {
        for (lane, (x, y)) in lanes.iter_mut().zip(ca.iter().zip(cb)) {
            *lane = madd::<FMA>(*x, *y, *lane);
        }
    }
    let mut tail = 0.0;
    for (x, y) in ac.remainder().iter().zip(bc.remainder()) {
        tail = madd::<FMA>(*x, *y, tail);
    }
    (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail
}

/// One output row of [`gemm_nt`]: `or[j] += ar · b[j]ᵀ` for every weight
/// row `j`, four columns advancing together so each `ar` load feeds four
/// independent four-lane chains. Column summation order is exactly
/// [`dot_impl`]'s.
#[inline(always)]
fn nt_row<const FMA: bool>(or: &mut [f64], ar: &[f64], b: &[f64], k: usize, l0: usize) {
    let len = ar.len();
    let n = or.len();
    let n4 = n - n % 4;
    let mut j = 0;
    // Eight-column panels first (FMA build only): one `ar` chunk load
    // feeds eight accumulators, so the load ports stop being the
    // bottleneck. Per column the accumulation order is identical to the
    // four-column and single-column forms below.
    #[cfg(target_arch = "x86_64")]
    if FMA {
        let len4 = len & !3;
        while j + 8 <= n {
            let rows: [&[f64]; 8] = core::array::from_fn(|c| &b[(j + c) * k + l0..][..len]);
            let mut acc = [avx::zero(); 8];
            let mut t = 0;
            while t < len4 {
                let av = avx::load4(quad(ar, t));
                for (a, row) in acc.iter_mut().zip(rows) {
                    *a = avx::fmadd(av, avx::load4(quad(row, t)), *a);
                }
                t += 4;
            }
            let mut tails = [0.0f64; 8];
            while t < len {
                let x = ar[t];
                for (tl, row) in tails.iter_mut().zip(rows) {
                    *tl = madd::<FMA>(x, row[t], *tl);
                }
                t += 1;
            }
            for c in 0..8 {
                let mut lane = [0.0f64; 4];
                avx::store4(&mut lane, acc[c]);
                or[j + c] += (lane[0] + lane[1]) + (lane[2] + lane[3]) + tails[c];
            }
            j += 8;
        }
    }
    while j < n4 {
        let b0 = &b[j * k + l0..j * k + l0 + len];
        let b1 = &b[(j + 1) * k + l0..(j + 1) * k + l0 + len];
        let b2 = &b[(j + 2) * k + l0..(j + 2) * k + l0 + len];
        let b3 = &b[(j + 3) * k + l0..(j + 3) * k + l0 + len];
        let mut lanes = [[0.0f64; 4]; 4];
        let len4 = len & !3;
        let mut t = 0;
        #[cfg(target_arch = "x86_64")]
        if FMA {
            let mut acc = [avx::zero(); 4];
            while t < len4 {
                let av = avx::load4(quad(ar, t));
                acc[0] = avx::fmadd(av, avx::load4(quad(b0, t)), acc[0]);
                acc[1] = avx::fmadd(av, avx::load4(quad(b1, t)), acc[1]);
                acc[2] = avx::fmadd(av, avx::load4(quad(b2, t)), acc[2]);
                acc[3] = avx::fmadd(av, avx::load4(quad(b3, t)), acc[3]);
                t += 4;
            }
            for (lane, a) in lanes.iter_mut().zip(acc) {
                avx::store4(lane, a);
            }
        }
        if !FMA || cfg!(not(target_arch = "x86_64")) {
            while t < len4 {
                let ca: &[f64; 4] = ar[t..t + 4].try_into().expect("quad");
                let cb0: &[f64; 4] = b0[t..t + 4].try_into().expect("quad");
                let cb1: &[f64; 4] = b1[t..t + 4].try_into().expect("quad");
                let cb2: &[f64; 4] = b2[t..t + 4].try_into().expect("quad");
                let cb3: &[f64; 4] = b3[t..t + 4].try_into().expect("quad");
                for i in 0..4 {
                    lanes[0][i] = madd::<FMA>(ca[i], cb0[i], lanes[0][i]);
                    lanes[1][i] = madd::<FMA>(ca[i], cb1[i], lanes[1][i]);
                    lanes[2][i] = madd::<FMA>(ca[i], cb2[i], lanes[2][i]);
                    lanes[3][i] = madd::<FMA>(ca[i], cb3[i], lanes[3][i]);
                }
                t += 4;
            }
        }
        let mut tails = [0.0f64; 4];
        while t < len {
            let x = ar[t];
            tails[0] = madd::<FMA>(x, b0[t], tails[0]);
            tails[1] = madd::<FMA>(x, b1[t], tails[1]);
            tails[2] = madd::<FMA>(x, b2[t], tails[2]);
            tails[3] = madd::<FMA>(x, b3[t], tails[3]);
            t += 1;
        }
        for c in 0..4 {
            or[j + c] += (lanes[c][0] + lanes[c][1]) + (lanes[c][2] + lanes[c][3]) + tails[c];
        }
        j += 4;
    }
    for (jj, o) in or.iter_mut().enumerate().skip(n4) {
        *o += dot_impl::<FMA>(ar, &b[jj * k + l0..jj * k + l0 + len]);
    }
}

#[inline(always)]
fn gemm_nt_impl<const FMA: bool>(out: &mut [f64], a: &[f64], b: &[f64], m: usize, k: usize, n: usize) {
    out[..m * n].fill(0.0);
    for l0 in (0..k).step_by(KC) {
        let len = (l0 + KC).min(k) - l0;
        for i in 0..m {
            let ar = &a[i * k + l0..i * k + l0 + len];
            nt_row::<FMA>(&mut out[i * n..(i + 1) * n], ar, b, k, l0);
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
fn gemm_nt_avx(out: &mut [f64], a: &[f64], b: &[f64], m: usize, k: usize, n: usize) {
    gemm_nt_impl::<true>(out, a, b, m, k, n);
}

/// `out[m×n] = a[m×k] · b[n×k]ᵀ` — the forward-pass shape, with the right
/// operand stored row-major as `n` rows of length `k` (an MLP weight
/// matrix, one row per output unit).
///
/// # Panics
///
/// Panics (debug) if any slice is shorter than its `m·k`/`n·k`/`m·n` shape.
pub fn gemm_nt(out: &mut [f64], a: &[f64], b: &[f64], m: usize, k: usize, n: usize) {
    debug_assert!(a.len() >= m * k && b.len() >= n * k && out.len() >= m * n);
    #[cfg(target_arch = "x86_64")]
    if fma_enabled() {
        // SAFETY: avx2+fma presence checked at runtime just above.
        #[allow(unsafe_code)]
        return unsafe { gemm_nt_avx(out, a, b, m, k, n) };
    }
    gemm_nt_impl::<false>(out, a, b, m, k, n);
}

/// The shared rank-4 row update of the gradient kernels:
/// `or[j] = c0·b0[j] + (c1·b1[j] + (c2·b2[j] + (c3·b3[j] + or[j])))` for
/// every `j`. The FMA build runs it 4-wide; per element both builds nest
/// the fused adds identically, so vector and scalar tails agree bitwise.
#[inline(always)]
fn fold4<const FMA: bool>(
    or: &mut [f64],
    c: [f64; 4],
    b0: &[f64],
    b1: &[f64],
    b2: &[f64],
    b3: &[f64],
) {
    let n = or.len();
    debug_assert!(b0.len() == n && b1.len() == n && b2.len() == n && b3.len() == n);
    let mut j = 0;
    #[cfg(target_arch = "x86_64")]
    if FMA {
        let cv = [avx::splat(c[0]), avx::splat(c[1]), avx::splat(c[2]), avx::splat(c[3])];
        let n4 = n & !3;
        // Two independent quad chains per iteration so the four-deep FMA
        // dependency chain on `v` overlaps with its neighbor. Per-element
        // arithmetic order is unchanged.
        while j + 8 <= n4 {
            let mut v = avx::load4(quad(or, j));
            let mut w = avx::load4(quad(or, j + 4));
            v = avx::fmadd(cv[3], avx::load4(quad(b3, j)), v);
            w = avx::fmadd(cv[3], avx::load4(quad(b3, j + 4)), w);
            v = avx::fmadd(cv[2], avx::load4(quad(b2, j)), v);
            w = avx::fmadd(cv[2], avx::load4(quad(b2, j + 4)), w);
            v = avx::fmadd(cv[1], avx::load4(quad(b1, j)), v);
            w = avx::fmadd(cv[1], avx::load4(quad(b1, j + 4)), w);
            v = avx::fmadd(cv[0], avx::load4(quad(b0, j)), v);
            w = avx::fmadd(cv[0], avx::load4(quad(b0, j + 4)), w);
            avx::store4((&mut or[j..j + 4]).try_into().expect("quad"), v);
            avx::store4((&mut or[j + 4..j + 8]).try_into().expect("quad"), w);
            j += 8;
        }
        while j < n4 {
            let mut v = avx::load4(quad(or, j));
            v = avx::fmadd(cv[3], avx::load4(quad(b3, j)), v);
            v = avx::fmadd(cv[2], avx::load4(quad(b2, j)), v);
            v = avx::fmadd(cv[1], avx::load4(quad(b1, j)), v);
            v = avx::fmadd(cv[0], avx::load4(quad(b0, j)), v);
            avx::store4((&mut or[j..j + 4]).try_into().expect("quad"), v);
            j += 4;
        }
    }
    while j < n {
        or[j] = madd::<FMA>(
            c[0],
            b0[j],
            madd::<FMA>(c[1], b1[j], madd::<FMA>(c[2], b2[j], madd::<FMA>(c[3], b3[j], or[j]))),
        );
        j += 1;
    }
}

/// Rank-1 row update `or[j] += c·br[j]`, 4-wide in the FMA build.
#[inline(always)]
fn fold1<const FMA: bool>(or: &mut [f64], c: f64, br: &[f64]) {
    let n = or.len();
    debug_assert_eq!(br.len(), n);
    let mut j = 0;
    #[cfg(target_arch = "x86_64")]
    if FMA {
        let cv = avx::splat(c);
        let n4 = n & !3;
        while j < n4 {
            let v = avx::fmadd(cv, avx::load4(quad(br, j)), avx::load4(quad(or, j)));
            avx::store4((&mut or[j..j + 4]).try_into().expect("quad"), v);
            j += 4;
        }
    }
    while j < n {
        or[j] = madd::<FMA>(c, br[j], or[j]);
        j += 1;
    }
}

#[inline(always)]
fn gemm_nn_impl<const FMA: bool>(out: &mut [f64], a: &[f64], b: &[f64], m: usize, k: usize, n: usize) {
    out[..m * n].fill(0.0);
    for l0 in (0..k).step_by(KC) {
        let l1 = (l0 + KC).min(k);
        let len4 = (l1 - l0) - (l1 - l0) % 4;
        for i in 0..m {
            let or = &mut out[i * n..(i + 1) * n];
            let mut l = l0;
            while l < l0 + len4 {
                let c0 = a[i * k + l];
                let c1 = a[i * k + l + 1];
                let c2 = a[i * k + l + 2];
                let c3 = a[i * k + l + 3];
                if c0 != 0.0 || c1 != 0.0 || c2 != 0.0 || c3 != 0.0 {
                    fold4::<FMA>(
                        or,
                        [c0, c1, c2, c3],
                        &b[l * n..l * n + n],
                        &b[(l + 1) * n..(l + 1) * n + n],
                        &b[(l + 2) * n..(l + 2) * n + n],
                        &b[(l + 3) * n..(l + 3) * n + n],
                    );
                }
                l += 4;
            }
            while l < l1 {
                let c = a[i * k + l];
                if c != 0.0 {
                    fold1::<FMA>(or, c, &b[l * n..l * n + n]);
                }
                l += 1;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
fn gemm_nn_avx(out: &mut [f64], a: &[f64], b: &[f64], m: usize, k: usize, n: usize) {
    gemm_nn_impl::<true>(out, a, b, m, k, n);
}

/// `out[m×n] = a[m×k] · b[k×n]` — the input-gradient shape
/// (`Gx = Δ · W`). Four rank-1 updates fold into each pass over an output
/// row; all-zero delta quads (ReLU-killed units) skip theirs.
pub fn gemm_nn(out: &mut [f64], a: &[f64], b: &[f64], m: usize, k: usize, n: usize) {
    debug_assert!(a.len() >= m * k && b.len() >= k * n && out.len() >= m * n);
    #[cfg(target_arch = "x86_64")]
    if fma_enabled() {
        // SAFETY: avx2+fma presence checked at runtime just above.
        #[allow(unsafe_code)]
        return unsafe { gemm_nn_avx(out, a, b, m, k, n) };
    }
    gemm_nn_impl::<false>(out, a, b, m, k, n);
}

#[inline(always)]
fn gemm_tn_impl<const FMA: bool>(out: &mut [f64], a: &[f64], b: &[f64], m: usize, k: usize, n: usize) {
    let m4 = m - m % 4;
    let mut s = 0;
    while s < m4 {
        let b0 = &b[s * n..s * n + n];
        let b1 = &b[(s + 1) * n..(s + 1) * n + n];
        let b2 = &b[(s + 2) * n..(s + 2) * n + n];
        let b3 = &b[(s + 3) * n..(s + 3) * n + n];
        for i in 0..k {
            let c0 = a[s * k + i];
            let c1 = a[(s + 1) * k + i];
            let c2 = a[(s + 2) * k + i];
            let c3 = a[(s + 3) * k + i];
            if c0 != 0.0 || c1 != 0.0 || c2 != 0.0 || c3 != 0.0 {
                fold4::<FMA>(&mut out[i * n..(i + 1) * n], [c0, c1, c2, c3], b0, b1, b2, b3);
            }
        }
        s += 4;
    }
    while s < m {
        let br = &b[s * n..s * n + n];
        let ar = &a[s * k..(s + 1) * k];
        for (i, &c) in ar.iter().enumerate() {
            if c != 0.0 {
                fold1::<FMA>(&mut out[i * n..(i + 1) * n], c, br);
            }
        }
        s += 1;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
fn gemm_tn_avx(out: &mut [f64], a: &[f64], b: &[f64], m: usize, k: usize, n: usize) {
    gemm_tn_impl::<true>(out, a, b, m, k, n);
}

/// `out[k×n] += a[m×k]ᵀ · b[m×n]` — the weight-gradient shape
/// (`Gw += Δᵀ · A_in`), accumulating like the scalar backward does. Four
/// samples fold into each pass over an output row; all-zero delta quads
/// (ReLU-killed units) skip theirs.
pub fn gemm_tn_acc(out: &mut [f64], a: &[f64], b: &[f64], m: usize, k: usize, n: usize) {
    debug_assert!(a.len() >= m * k && b.len() >= m * n && out.len() >= k * n);
    #[cfg(target_arch = "x86_64")]
    if fma_enabled() {
        // SAFETY: avx2+fma presence checked at runtime just above.
        #[allow(unsafe_code)]
        return unsafe { gemm_tn_avx(out, a, b, m, k, n) };
    }
    gemm_tn_impl::<false>(out, a, b, m, k, n);
}

/// Hoisted per-step scalars of one fused Adam walk ([`adam_walk`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct AdamScalars {
    /// β₁ and 1 − β₁.
    pub(crate) beta1: f64,
    pub(crate) nbeta1: f64,
    /// β₂ and 1 − β₂.
    pub(crate) beta2: f64,
    pub(crate) nbeta2: f64,
    /// Bias corrections 1 − β₁ᵗ and 1 − β₂ᵗ.
    pub(crate) bias1: f64,
    pub(crate) bias2: f64,
    pub(crate) lr: f64,
    pub(crate) eps: f64,
}

#[inline(always)]
fn adam_walk_impl(s: AdamScalars, params: &mut [f64], grads: &[f64], m: &mut [f64], v: &mut [f64]) {
    for (((p, &g), mi), vi) in params.iter_mut().zip(grads).zip(m.iter_mut()).zip(v.iter_mut()) {
        *mi = s.beta1 * *mi + s.nbeta1 * g;
        *vi = s.beta2 * *vi + s.nbeta2 * g * g;
        let m_hat = *mi / s.bias1;
        let v_hat = *vi / s.bias2;
        *p -= s.lr * m_hat / (v_hat.sqrt() + s.eps);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
fn adam_walk_avx(s: AdamScalars, params: &mut [f64], grads: &[f64], m: &mut [f64], v: &mut [f64]) {
    adam_walk_impl(s, params, grads, m, v);
}

/// One fused Adam update walk over a flat parameter slab. Elementwise
/// (no reductions, no contraction), so the AVX build is bitwise identical
/// to the portable one — it exists purely so LLVM emits the 4-wide
/// multiply/divide/`vsqrtpd` chain instead of the 2-wide SSE2 default.
///
/// # Panics
///
/// Panics (debug) if slab lengths disagree.
pub(crate) fn adam_walk(s: AdamScalars, params: &mut [f64], grads: &[f64], m: &mut [f64], v: &mut [f64]) {
    debug_assert!(grads.len() == params.len() && m.len() == params.len() && v.len() == params.len());
    #[cfg(target_arch = "x86_64")]
    if fma_enabled() {
        // SAFETY: avx2+fma presence checked at runtime just above.
        #[allow(unsafe_code)]
        return unsafe { adam_walk_avx(s, params, grads, m, v) };
    }
    adam_walk_impl(s, params, grads, m, v);
}

#[inline(always)]
fn blend_impl(dst: &mut [f64], src: &[f64], tau: f64) {
    let ntau = 1.0 - tau;
    for (t, s) in dst.iter_mut().zip(src) {
        *t = tau * s + ntau * *t;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
fn blend_avx(dst: &mut [f64], src: &[f64], tau: f64) {
    blend_impl(dst, src, tau);
}

/// Polyak blend `dst = τ·src + (1 − τ)·dst`, elementwise — the target-
/// network soft update. Like [`adam_walk`], the AVX build changes width,
/// not numerics.
///
/// # Panics
///
/// Panics (debug) if lengths disagree.
pub(crate) fn blend(dst: &mut [f64], src: &[f64], tau: f64) {
    debug_assert_eq!(dst.len(), src.len());
    #[cfg(target_arch = "x86_64")]
    if fma_enabled() {
        // SAFETY: avx2+fma presence checked at runtime just above.
        #[allow(unsafe_code)]
        return unsafe { blend_avx(dst, src, tau) };
    }
    blend_impl(dst, src, tau);
}

/// Per-network batched activation storage for [`Mlp::forward_batch_into`] /
/// [`Mlp::backward_batch_into`]: one `[max_batch × width]` row-major slab
/// per layer (input included) plus two delta scratch slabs for the
/// backward sweep. Everything is allocated at construction; reusing the
/// cache across training steps is what makes the hot path allocation-free.
#[derive(Debug, Clone)]
pub struct BatchCache {
    dims: Vec<usize>,
    max_batch: usize,
    /// `dims.len()` slabs: `acts[l]` holds `[max_batch × dims[l]]`.
    acts: Vec<Vec<f64>>,
    /// Backward ping/pong delta slabs, `[max_batch × max_width]` each.
    delta_a: Vec<f64>,
    delta_b: Vec<f64>,
}

impl BatchCache {
    /// Creates a cache shaped for `mlp` holding up to `max_batch` rows.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch == 0`.
    pub fn for_mlp(mlp: &Mlp, max_batch: usize) -> Self {
        Self::for_dims(mlp.dims(), max_batch)
    }

    /// Creates a cache for the given layer widths.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch == 0` or fewer than two dims are given.
    pub fn for_dims(dims: &[usize], max_batch: usize) -> Self {
        assert!(max_batch > 0, "batch capacity must be positive");
        assert!(dims.len() >= 2, "need at least input and output dims");
        let widest = dims.iter().copied().max().unwrap_or(1);
        Self {
            dims: dims.to_vec(),
            max_batch,
            acts: dims.iter().map(|&d| vec![0.0; max_batch * d]).collect(),
            delta_a: vec![0.0; max_batch * widest],
            delta_b: vec![0.0; max_batch * widest],
        }
    }

    /// Maximum number of rows per pass.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Layer widths this cache is shaped for.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The output rows of the last forward pass: `[batch × output_dim]`.
    ///
    /// # Panics
    ///
    /// Panics if `batch` exceeds the cache capacity.
    pub fn output(&self, batch: usize) -> &[f64] {
        assert!(batch <= self.max_batch, "batch exceeds cache capacity");
        let d = *self.dims.last().expect("dims nonempty");
        &self.acts[self.dims.len() - 1][..batch * d]
    }

    /// Splits the internals for the forward/backward passes.
    pub(crate) fn parts_mut(&mut self) -> (&mut [Vec<f64>], &mut [f64], &mut [f64]) {
        (&mut self.acts, &mut self.delta_a, &mut self.delta_b)
    }
}

/// Ping-pong row storage for the zero-allocation single-sample inference
/// path ([`Mlp::forward_into`]): two rows as wide as the widest layer.
#[derive(Debug, Clone)]
pub struct ActScratch {
    pub(crate) a: Vec<f64>,
    pub(crate) b: Vec<f64>,
}

impl ActScratch {
    /// Scratch sized for `mlp` (or any network no wider than it).
    pub fn for_mlp(mlp: &Mlp) -> Self {
        Self::with_width(mlp.dims().iter().copied().max().unwrap_or(1))
    }

    /// Scratch whose rows hold `width` values.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn with_width(width: usize) -> Self {
        assert!(width > 0, "scratch width must be positive");
        Self {
            a: vec![0.0; width],
            b: vec![0.0; width],
        }
    }

    /// Row capacity.
    pub fn width(&self) -> usize {
        self.a.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_nt(a: &[f64], b: &[f64], m: usize, k: usize, n: usize) -> Vec<f64> {
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for l in 0..k {
                    out[i * n + j] += a[i * k + l] * b[j * k + l];
                }
            }
        }
        out
    }

    fn close(x: &[f64], y: &[f64]) {
        assert_eq!(x.len(), y.len());
        for (i, (a, b)) in x.iter().zip(y).enumerate() {
            assert!(
                (a - b).abs() <= 1e-12 * (1.0 + a.abs().max(b.abs())),
                "entry {i}: {a} vs {b}"
            );
        }
    }

    fn ramp(len: usize, scale: f64) -> Vec<f64> {
        (0..len).map(|i| ((i * 37 % 101) as f64 - 50.0) * scale).collect()
    }

    #[test]
    fn gemm_nt_matches_naive() {
        for (m, k, n) in [(1, 1, 1), (3, 5, 2), (33, 70, 65), (7, 300, 9)] {
            let a = ramp(m * k, 0.01);
            let b = ramp(n * k, 0.02);
            let mut out = vec![f64::NAN; m * n];
            gemm_nt(&mut out, &a, &b, m, k, n);
            close(&out, &naive_nt(&a, &b, m, k, n));
        }
    }

    #[test]
    fn gemm_nn_matches_naive() {
        for (m, k, n) in [(1, 1, 1), (4, 6, 3), (40, 64, 33), (5, 270, 8)] {
            let a = ramp(m * k, 0.01);
            let b = ramp(k * n, 0.02);
            let mut naive = vec![0.0; m * n];
            for i in 0..m {
                for l in 0..k {
                    for j in 0..n {
                        naive[i * n + j] += a[i * k + l] * b[l * n + j];
                    }
                }
            }
            let mut out = vec![f64::NAN; m * n];
            gemm_nn(&mut out, &a, &b, m, k, n);
            close(&out, &naive);
        }
    }

    #[test]
    fn gemm_tn_acc_accumulates() {
        let (m, k, n) = (9, 7, 11);
        let a = ramp(m * k, 0.05);
        let b = ramp(m * n, 0.03);
        let mut naive = vec![1.5; k * n];
        for s in 0..m {
            for i in 0..k {
                for j in 0..n {
                    naive[i * n + j] += a[s * k + i] * b[s * n + j];
                }
            }
        }
        let mut out = vec![1.5; k * n];
        gemm_tn_acc(&mut out, &a, &b, m, k, n);
        close(&out, &naive);
    }

    #[test]
    fn cache_shapes_follow_dims() {
        let c = BatchCache::for_dims(&[5, 64, 64, 1], 32);
        assert_eq!(c.max_batch(), 32);
        assert_eq!(c.output(32).len(), 32);
        assert_eq!(c.output(7).len(), 7);
    }

    #[test]
    #[should_panic(expected = "batch capacity must be positive")]
    fn cache_rejects_zero_batch() {
        let _ = BatchCache::for_dims(&[2, 2], 0);
    }
}
