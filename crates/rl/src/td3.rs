//! Twin Delayed Deep Deterministic policy gradient (TD3, Fujimoto et al.
//! 2018) — the agent architecture of the paper's Algorithm 2.

use self::rand_distr_free::sample_standard_normal;
use crate::kernel::{ActScratch, BatchCache};
use crate::{Activation, Adam, Mlp, Transition};
use rand::Rng;

/// Minimal Box–Muller standard normal sampler so we only depend on `rand`'s
/// uniform source.
mod rand_distr_free {
    use rand::Rng;

    pub fn sample_standard_normal(rng: &mut impl Rng) -> f64 {
        // Box–Muller; u1 in (0,1] to avoid ln(0).
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// Hyper-parameters for a [`Td3Agent`].
#[derive(Debug, Clone, PartialEq)]
pub struct Td3Config {
    /// State dimension.
    pub state_dim: usize,
    /// Action dimension (actions are tanh-bounded to `[−1, 1]`).
    pub action_dim: usize,
    /// Hidden layer widths for actor and critics.
    pub hidden: Vec<usize>,
    /// Actor learning rate.
    pub actor_lr: f64,
    /// Critic learning rate.
    pub critic_lr: f64,
    /// Discount factor γ.
    pub gamma: f64,
    /// Polyak averaging coefficient τ for target networks.
    pub tau: f64,
    /// Actor/target update period `d` (delayed policy updates).
    pub policy_delay: u64,
    /// Target-policy smoothing noise σ̃.
    pub policy_noise: f64,
    /// Smoothing noise clip `c`.
    pub noise_clip: f64,
    /// Exploration noise σ added by [`Td3Agent::act_exploring`].
    pub exploration_noise: f64,
}

impl Td3Config {
    /// Defaults from the TD3 paper, scaled for the small PTA control
    /// problem: hidden `[64, 64]`, lr 1e−3, γ 0.99, τ 0.005, delay 2,
    /// σ̃ 0.2 clipped at 0.5, exploration σ 0.1.
    pub fn new(state_dim: usize, action_dim: usize) -> Self {
        Self {
            state_dim,
            action_dim,
            hidden: vec![64, 64],
            actor_lr: 1e-3,
            critic_lr: 1e-3,
            gamma: 0.99,
            tau: 0.005,
            policy_delay: 2,
            policy_noise: 0.2,
            noise_clip: 0.5,
            exploration_noise: 0.1,
        }
    }
}

/// Preallocated storage for [`Td3Agent::train_batched`]: the gathered
/// minibatch as row-major `[batch × dim]` slabs, per-network
/// [`BatchCache`] activation storage, and flat gradient slabs.
///
/// Constructed once (sized for the largest batch the caller will use) and
/// reused across training steps; after construction a
/// [`Td3Agent::train_batched`] call performs **zero heap allocations** —
/// a property pinned by the counting-allocator test in
/// `crates/rl/tests/alloc.rs`.
///
/// The workflow is: [`TrainWorkspace::clear`], then one
/// [`TrainWorkspace::push`] per sampled transition (gathering straight out
/// of a replay buffer via `get`), then [`Td3Agent::train_batched`], then
/// read [`TrainWorkspace::td_errors`] for priority refreshes.
#[derive(Debug, Clone)]
pub struct TrainWorkspace {
    state_dim: usize,
    action_dim: usize,
    max_batch: usize,
    len: usize,
    /// `[batch × state_dim]` gathered states.
    states: Vec<f64>,
    /// `[batch × state_dim]` gathered successor states.
    next_states: Vec<f64>,
    /// `[batch]` gathered rewards.
    rewards: Vec<f64>,
    /// `[batch]` bootstrap masks: 0 where the episode ended, else 1.
    not_done: Vec<f64>,
    /// `[batch × (state_dim + action_dim)]` gathered `s ‖ a` critic inputs.
    sa: Vec<f64>,
    /// `[batch × (state_dim + action_dim)]` scratch rows: first
    /// `s′ ‖ ã` for the target critics, later `s ‖ π(s)` for the actor loss.
    sa2: Vec<f64>,
    /// `[batch]` TD targets `y`.
    targets: Vec<f64>,
    /// `[batch]` TD errors `y − Q₁(s,a)` from before the update.
    td: Vec<f64>,
    /// `[batch × action_dim]` output-gradient rows (critics use width 1).
    grad_out: Vec<f64>,
    /// `[batch × (state_dim + action_dim)]` input-gradient rows.
    grad_in: Vec<f64>,
    /// Activation storage shared by the actor and its target.
    actor_cache: BatchCache,
    /// Activation storage shared by critic 1 and its target.
    critic1_cache: BatchCache,
    /// Activation storage shared by critic 2 and its target.
    critic2_cache: BatchCache,
    /// Actor gradient slab.
    g_actor: Vec<f64>,
    /// Critic-1 gradient slab (reused as scratch for the actor's Q pass).
    g_critic1: Vec<f64>,
    /// Critic-2 gradient slab.
    g_critic2: Vec<f64>,
}

impl TrainWorkspace {
    /// Creates a workspace for agents with `config`'s shape, holding up to
    /// `max_batch` transitions.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch == 0` or a config dimension is zero.
    pub fn new(config: &Td3Config, max_batch: usize) -> Self {
        assert!(max_batch > 0, "batch capacity must be positive");
        assert!(
            config.state_dim > 0 && config.action_dim > 0,
            "zero dimension"
        );
        let (sd, ad) = (config.state_dim, config.action_dim);
        let mut actor_dims = vec![sd];
        actor_dims.extend(&config.hidden);
        actor_dims.push(ad);
        let mut critic_dims = vec![sd + ad];
        critic_dims.extend(&config.hidden);
        critic_dims.push(1);
        let param_count =
            |dims: &[usize]| -> usize { dims.windows(2).map(|w| w[0] * w[1] + w[1]).sum() };
        Self {
            state_dim: sd,
            action_dim: ad,
            max_batch,
            len: 0,
            states: vec![0.0; max_batch * sd],
            next_states: vec![0.0; max_batch * sd],
            rewards: vec![0.0; max_batch],
            not_done: vec![0.0; max_batch],
            sa: vec![0.0; max_batch * (sd + ad)],
            sa2: vec![0.0; max_batch * (sd + ad)],
            targets: vec![0.0; max_batch],
            td: vec![0.0; max_batch],
            grad_out: vec![0.0; max_batch * ad],
            grad_in: vec![0.0; max_batch * (sd + ad)],
            actor_cache: BatchCache::for_dims(&actor_dims, max_batch),
            critic1_cache: BatchCache::for_dims(&critic_dims, max_batch),
            critic2_cache: BatchCache::for_dims(&critic_dims, max_batch),
            g_actor: vec![0.0; param_count(&actor_dims)],
            g_critic1: vec![0.0; param_count(&critic_dims)],
            g_critic2: vec![0.0; param_count(&critic_dims)],
        }
    }

    /// Number of transitions gathered so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no transitions are gathered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum number of transitions per training step.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Empties the gathered minibatch (capacity is retained).
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Gathers one transition into the next minibatch row, scattering its
    /// fields into the state/action/reward slabs without cloning.
    ///
    /// # Panics
    ///
    /// Panics if the workspace is full or the transition's dimensions
    /// disagree with the configured shape.
    pub fn push(&mut self, t: &Transition) {
        assert!(self.len < self.max_batch, "workspace full");
        assert_eq!(t.state.len(), self.state_dim, "state dimension mismatch");
        assert_eq!(t.action.len(), self.action_dim, "action dimension mismatch");
        assert_eq!(
            t.next_state.len(),
            self.state_dim,
            "next-state dimension mismatch"
        );
        let (sd, ad) = (self.state_dim, self.action_dim);
        let r = self.len;
        self.states[r * sd..(r + 1) * sd].copy_from_slice(&t.state);
        self.next_states[r * sd..(r + 1) * sd].copy_from_slice(&t.next_state);
        self.rewards[r] = t.reward;
        self.not_done[r] = if t.done { 0.0 } else { 1.0 };
        let row = &mut self.sa[r * (sd + ad)..(r + 1) * (sd + ad)];
        row[..sd].copy_from_slice(&t.state);
        row[sd..].copy_from_slice(&t.action);
        self.len += 1;
    }

    /// Per-row TD errors `y − Q₁(s,a)` from the latest
    /// [`Td3Agent::train_batched`] call, in gather order.
    pub fn td_errors(&self) -> &[f64] {
        &self.td[..self.len]
    }

    /// The state gathered into row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.len()`.
    pub fn state_row(&self, r: usize) -> &[f64] {
        assert!(r < self.len, "row out of bounds");
        &self.states[r * self.state_dim..(r + 1) * self.state_dim]
    }

    /// The action gathered into row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.len()`.
    pub fn action_row(&self, r: usize) -> &[f64] {
        assert!(r < self.len, "row out of bounds");
        let sad = self.state_dim + self.action_dim;
        &self.sa[r * sad + self.state_dim..(r + 1) * sad]
    }

    /// The reward gathered into row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.len()`.
    pub fn reward_row(&self, r: usize) -> f64 {
        assert!(r < self.len, "row out of bounds");
        self.rewards[r]
    }
}

/// A TD3 actor–critic agent: deterministic tanh policy, twin Q critics,
/// target networks with Polyak updates, delayed policy updates and
/// target-policy smoothing.
#[derive(Debug, Clone)]
pub struct Td3Agent {
    config: Td3Config,
    actor: Mlp,
    actor_target: Mlp,
    critic1: Mlp,
    critic2: Mlp,
    critic1_target: Mlp,
    critic2_target: Mlp,
    actor_opt: Adam,
    critic1_opt: Adam,
    critic2_opt: Adam,
    train_steps: u64,
}

impl Td3Agent {
    /// Creates an agent with freshly initialized networks.
    ///
    /// # Panics
    ///
    /// Panics if `state_dim` or `action_dim` is zero.
    pub fn new(config: Td3Config, rng: &mut impl Rng) -> Self {
        assert!(
            config.state_dim > 0 && config.action_dim > 0,
            "zero dimension"
        );
        let mut actor_dims = vec![config.state_dim];
        actor_dims.extend(&config.hidden);
        actor_dims.push(config.action_dim);
        let mut critic_dims = vec![config.state_dim + config.action_dim];
        critic_dims.extend(&config.hidden);
        critic_dims.push(1);

        let actor = Mlp::new(&actor_dims, Activation::Tanh, rng);
        let critic1 = Mlp::new(&critic_dims, Activation::Linear, rng);
        let critic2 = Mlp::new(&critic_dims, Activation::Linear, rng);
        let actor_target = actor.clone();
        let critic1_target = critic1.clone();
        let critic2_target = critic2.clone();
        let actor_opt = Adam::new(actor.num_params(), config.actor_lr);
        let critic1_opt = Adam::new(critic1.num_params(), config.critic_lr);
        let critic2_opt = Adam::new(critic2.num_params(), config.critic_lr);
        Self {
            config,
            actor,
            actor_target,
            critic1,
            critic2,
            critic1_target,
            critic2_target,
            actor_opt,
            critic1_opt,
            critic2_opt,
            train_steps: 0,
        }
    }

    /// The agent's configuration.
    pub fn config(&self) -> &Td3Config {
        &self.config
    }

    /// Number of [`Td3Agent::train_on_batch`] calls so far.
    pub fn train_steps(&self) -> u64 {
        self.train_steps
    }

    /// The six networks in persistence order: actor, actor target,
    /// critic 1, critic 2, critic-1 target, critic-2 target.
    pub fn networks(&self) -> [&Mlp; 6] {
        [
            &self.actor,
            &self.actor_target,
            &self.critic1,
            &self.critic2,
            &self.critic1_target,
            &self.critic2_target,
        ]
    }

    /// Reassembles an agent from stored networks (same order as
    /// [`Td3Agent::networks`]) and a training-step counter. Optimizer
    /// moments and replay contents restart fresh.
    ///
    /// # Errors
    ///
    /// Returns a description when the network shapes disagree with the
    /// configuration.
    pub fn from_networks(
        config: Td3Config,
        networks: Vec<Mlp>,
        train_steps: u64,
    ) -> Result<Self, String> {
        if networks.len() != 6 {
            return Err(format!("expected 6 networks, got {}", networks.len()));
        }
        let mut it = networks.into_iter();
        let actor = it.next().expect("len checked");
        let actor_target = it.next().expect("len checked");
        let critic1 = it.next().expect("len checked");
        let critic2 = it.next().expect("len checked");
        let critic1_target = it.next().expect("len checked");
        let critic2_target = it.next().expect("len checked");
        if actor.input_dim() != config.state_dim || actor.output_dim() != config.action_dim {
            return Err("actor shape disagrees with config".into());
        }
        if critic1.input_dim() != config.state_dim + config.action_dim || critic1.output_dim() != 1
        {
            return Err("critic shape disagrees with config".into());
        }
        let actor_opt = Adam::new(actor.num_params(), config.actor_lr);
        let critic1_opt = Adam::new(critic1.num_params(), config.critic_lr);
        let critic2_opt = Adam::new(critic2.num_params(), config.critic_lr);
        Ok(Self {
            config,
            actor,
            actor_target,
            critic1,
            critic2,
            critic1_target,
            critic2_target,
            actor_opt,
            critic1_opt,
            critic2_opt,
            train_steps,
        })
    }

    /// Deterministic policy action, each component in `[−1, 1]`.
    pub fn act(&self, state: &[f64]) -> Vec<f64> {
        self.actor.forward(state)
    }

    /// Zero-allocation deterministic policy action into `out`
    /// (`action_dim` long), ping-ponging activations through `scratch`
    /// (shape it with [`Td3Agent::act_scratch`]). Shares the batched
    /// path's dot kernel, so it is bit-identical to a batched actor row;
    /// it matches the scalar [`Td3Agent::act`] to tight relative
    /// tolerance (the kernel's lane split reorders the summation).
    ///
    /// # Panics
    ///
    /// Panics if `state`/`out`/`scratch` disagree with the actor's shape.
    pub fn act_into(&self, state: &[f64], out: &mut [f64], scratch: &mut ActScratch) {
        self.actor.forward_into(state, out, scratch);
    }

    /// Scratch sized for [`Td3Agent::act_into`] /
    /// [`Td3Agent::act_exploring_into`] on this agent.
    pub fn act_scratch(&self) -> ActScratch {
        ActScratch::for_mlp(&self.actor)
    }

    /// Policy action with Gaussian exploration noise, clipped to `[−1, 1]`.
    pub fn act_exploring(&self, state: &[f64], rng: &mut impl Rng) -> Vec<f64> {
        self.act(state)
            .into_iter()
            .map(|a| {
                (a + self.config.exploration_noise * sample_standard_normal(rng)).clamp(-1.0, 1.0)
            })
            .collect()
    }

    /// Zero-allocation [`Td3Agent::act_exploring`]: deterministic action
    /// into `out`, then per-component clipped Gaussian noise. Draws noise
    /// in the same order as the allocating variant, so a fixed-seed run is
    /// unchanged by switching paths.
    ///
    /// # Panics
    ///
    /// Panics if `state`/`out`/`scratch` disagree with the actor's shape.
    pub fn act_exploring_into(
        &self,
        state: &[f64],
        out: &mut [f64],
        scratch: &mut ActScratch,
        rng: &mut impl Rng,
    ) {
        self.actor.forward_into(state, out, scratch);
        for a in out.iter_mut() {
            *a = (*a + self.config.exploration_noise * sample_standard_normal(rng))
                .clamp(-1.0, 1.0);
        }
    }

    /// Q-value of `(state, action)` under the first critic.
    pub fn q_value(&self, state: &[f64], action: &[f64]) -> f64 {
        let sa = [state, action].concat();
        self.critic1.forward(&sa)[0]
    }

    /// One TD3 training step on a batch (Algorithm 2 lines 9–18). Returns
    /// the per-sample TD errors `y − Q₁(s,a)` computed *before* the update,
    /// which feed priority refreshes.
    ///
    /// Thin wrapper over [`Td3Agent::train_batched`] that builds a
    /// throwaway [`TrainWorkspace`] per call; hot loops should hold a
    /// reusable workspace and call the batched method directly.
    ///
    /// An empty batch is a no-op returning an empty vector.
    pub fn train_on_batch(&mut self, batch: &[Transition], rng: &mut impl Rng) -> Vec<f64> {
        if batch.is_empty() {
            return Vec::new();
        }
        let mut ws = TrainWorkspace::new(&self.config, batch.len());
        for t in batch {
            ws.push(t);
        }
        self.train_batched(&mut ws, rng).to_vec()
    }

    /// One TD3 training step over the minibatch gathered in `ws`
    /// (Algorithm 2 lines 9–18), fully batched: each of the six networks
    /// runs one `[batch × dim]` forward (and, where needed, one backward)
    /// pass per step instead of one per transition, and each Adam update
    /// walks its parameter slab once. Performs zero heap allocations.
    ///
    /// Target-smoothing noise is drawn per row, per action dimension — the
    /// same order the per-transition loop used, so fixed-seed runs replay
    /// the identical noise sequence. Returns the per-row TD errors
    /// `y − Q₁(s,a)` from before the update (also available afterwards via
    /// [`TrainWorkspace::td_errors`]).
    ///
    /// An empty workspace is a no-op returning an empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the workspace shape disagrees with the agent's config.
    pub fn train_batched<'w>(
        &mut self,
        ws: &'w mut TrainWorkspace,
        rng: &mut impl Rng,
    ) -> &'w [f64] {
        let b = ws.len;
        if b == 0 {
            return &ws.td[..0];
        }
        assert_eq!(ws.state_dim, self.config.state_dim, "state dim mismatch");
        assert_eq!(ws.action_dim, self.config.action_dim, "action dim mismatch");
        let n = b as f64;
        let (sd, ad) = (self.config.state_dim, self.config.action_dim);
        let sad = sd + ad;
        let (gamma, tau) = (self.config.gamma, self.config.tau);
        let (policy_noise, noise_clip) = (self.config.policy_noise, self.config.noise_clip);
        let policy_delay = self.config.policy_delay;

        // --- targets with smoothed target policy ---
        self.actor_target
            .forward_batch_into(&ws.next_states, b, &mut ws.actor_cache);
        {
            let a2 = ws.actor_cache.output(b);
            for r in 0..b {
                let row = &mut ws.sa2[r * sad..(r + 1) * sad];
                row[..sd].copy_from_slice(&ws.next_states[r * sd..(r + 1) * sd]);
                for (d, slot) in row[sd..].iter_mut().enumerate() {
                    let eps = (policy_noise * sample_standard_normal(rng))
                        .clamp(-noise_clip, noise_clip);
                    *slot = (a2[r * ad + d] + eps).clamp(-1.0, 1.0);
                }
            }
        }
        self.critic1_target
            .forward_batch_into(&ws.sa2, b, &mut ws.critic1_cache);
        self.critic2_target
            .forward_batch_into(&ws.sa2, b, &mut ws.critic2_cache);
        {
            let q1 = ws.critic1_cache.output(b);
            let q2 = ws.critic2_cache.output(b);
            for r in 0..b {
                ws.targets[r] = ws.rewards[r] + gamma * ws.not_done[r] * q1[r].min(q2[r]);
            }
        }

        // --- critic updates: L = 1/N Σ (Q(s,a) − y)² ---
        self.critic1
            .forward_batch_into(&ws.sa, b, &mut ws.critic1_cache);
        self.critic2
            .forward_batch_into(&ws.sa, b, &mut ws.critic2_cache);
        {
            let q1 = ws.critic1_cache.output(b);
            for (((td, go), &y), &q) in ws.td[..b]
                .iter_mut()
                .zip(&mut ws.grad_out[..b])
                .zip(&ws.targets[..b])
                .zip(q1)
            {
                *td = y - q;
                *go = 2.0 * (q - y) / n;
            }
        }
        ws.g_critic1.fill(0.0);
        self.critic1.backward_batch_into(
            &mut ws.critic1_cache,
            b,
            &ws.grad_out[..b],
            &mut ws.g_critic1,
            &mut ws.grad_in,
        );
        {
            let q2 = ws.critic2_cache.output(b);
            for ((go, &y), &q) in ws.grad_out[..b].iter_mut().zip(&ws.targets[..b]).zip(q2) {
                *go = 2.0 * (q - y) / n;
            }
        }
        ws.g_critic2.fill(0.0);
        self.critic2.backward_batch_into(
            &mut ws.critic2_cache,
            b,
            &ws.grad_out[..b],
            &mut ws.g_critic2,
            &mut ws.grad_in,
        );
        self.critic1_opt
            .step(self.critic1.params_mut(), &ws.g_critic1);
        self.critic2_opt
            .step(self.critic2.params_mut(), &ws.g_critic2);

        self.train_steps += 1;

        // --- delayed policy + target updates ---
        if self.train_steps.is_multiple_of(policy_delay) {
            self.actor
                .forward_batch_into(&ws.states, b, &mut ws.actor_cache);
            {
                let a = ws.actor_cache.output(b);
                for r in 0..b {
                    let row = &mut ws.sa2[r * sad..(r + 1) * sad];
                    row[..sd].copy_from_slice(&ws.states[r * sd..(r + 1) * sd]);
                    row[sd..].copy_from_slice(&a[r * ad..(r + 1) * ad]);
                }
            }
            self.critic1
                .forward_batch_into(&ws.sa2, b, &mut ws.critic1_cache);
            // Maximize Q ⇒ minimize −Q. The critic's parameter gradients
            // are scratch here (only ∂(−Q̄)/∂input matters), so the
            // critic-1 slab — already applied above — is reused.
            ws.grad_out[..b].fill(-1.0 / n);
            ws.g_critic1.fill(0.0);
            self.critic1.backward_batch_into(
                &mut ws.critic1_cache,
                b,
                &ws.grad_out[..b],
                &mut ws.g_critic1,
                &mut ws.grad_in,
            );
            // Actor output gradients: the action slice of each input row.
            for r in 0..b {
                let (gin, gout) = (&ws.grad_in, &mut ws.grad_out);
                gout[r * ad..(r + 1) * ad]
                    .copy_from_slice(&gin[r * sad + sd..(r + 1) * sad]);
            }
            ws.g_actor.fill(0.0);
            self.actor.backward_batch_into(
                &mut ws.actor_cache,
                b,
                &ws.grad_out[..b * ad],
                &mut ws.g_actor,
                &mut ws.grad_in,
            );
            self.actor_opt.step(self.actor.params_mut(), &ws.g_actor);
            self.actor_target.soft_update_from(&self.actor, tau);
            self.critic1_target.soft_update_from(&self.critic1, tau);
            self.critic2_target.soft_update_from(&self.critic2, tau);
        }
        &ws.td[..b]
    }

    /// Mean actor objective `1/N Σ Q₁(s, π(s))` over the minibatch gathered
    /// in `ws`, computed with one batched forward per network instead of a
    /// scalar actor + critic pass per row. Reuses the workspace's activation
    /// caches and `s ‖ π(s)` scratch rows; allocation-free and read-only on
    /// the agent. Row order matches the per-row scalar sum
    /// `Σ q_value(s, act(s))`, so the result is bit-identical to it.
    ///
    /// Telemetry helper: training loops report `−mean_actor_objective` as
    /// the actor loss without paying per-row forward passes.
    ///
    /// # Panics
    ///
    /// Panics if the workspace shape disagrees with the agent's config.
    pub fn mean_actor_objective(&self, ws: &mut TrainWorkspace) -> f64 {
        let b = ws.len;
        if b == 0 {
            return 0.0;
        }
        assert_eq!(ws.state_dim, self.config.state_dim, "state dim mismatch");
        assert_eq!(ws.action_dim, self.config.action_dim, "action dim mismatch");
        let (sd, ad) = (self.config.state_dim, self.config.action_dim);
        let sad = sd + ad;
        self.actor
            .forward_batch_into(&ws.states, b, &mut ws.actor_cache);
        {
            let a = ws.actor_cache.output(b);
            for r in 0..b {
                let row = &mut ws.sa2[r * sad..(r + 1) * sad];
                row[..sd].copy_from_slice(&ws.states[r * sd..(r + 1) * sd]);
                row[sd..].copy_from_slice(&a[r * ad..(r + 1) * ad]);
            }
        }
        self.critic1
            .forward_batch_into(&ws.sa2, b, &mut ws.critic1_cache);
        let q = ws.critic1_cache.output(b);
        q.iter().sum::<f64>() / b as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2024)
    }

    fn transition(s: f64, a: f64, r: f64, s2: f64) -> Transition {
        Transition {
            state: vec![s],
            action: vec![a],
            reward: r,
            next_state: vec![s2],
            done: false,
        }
    }

    #[test]
    fn actions_are_bounded() {
        let agent = Td3Agent::new(Td3Config::new(3, 2), &mut rng());
        let a = agent.act(&[10.0, -10.0, 0.0]);
        assert_eq!(a.len(), 2);
        assert!(a.iter().all(|v| (-1.0..=1.0).contains(v)));
    }

    #[test]
    fn exploration_noise_stays_bounded() {
        let agent = Td3Agent::new(Td3Config::new(2, 1), &mut rng());
        let mut r = rng();
        for _ in 0..100 {
            let a = agent.act_exploring(&[0.5, -0.5], &mut r);
            assert!((-1.0..=1.0).contains(&a[0]));
        }
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut agent = Td3Agent::new(Td3Config::new(2, 1), &mut rng());
        let before = agent.train_steps();
        let errs = agent.train_on_batch(&[], &mut rng());
        assert!(errs.is_empty());
        assert_eq!(agent.train_steps(), before);
    }

    #[test]
    fn td_errors_have_batch_length() {
        let mut agent = Td3Agent::new(Td3Config::new(1, 1), &mut rng());
        let batch = vec![
            transition(0.0, 0.1, 1.0, 0.5),
            transition(0.5, -0.2, 0.0, 1.0),
        ];
        let errs = agent.train_on_batch(&batch, &mut rng());
        assert_eq!(errs.len(), 2);
        assert!(errs.iter().all(|e| e.is_finite()));
    }

    #[test]
    fn critic_learns_constant_reward() {
        // One state, one action, reward always 1, episode ends: Q → 1.
        let mut agent = Td3Agent::new(Td3Config::new(1, 1), &mut rng());
        let mut r = rng();
        let t = Transition {
            state: vec![0.0],
            action: vec![0.0],
            reward: 1.0,
            next_state: vec![0.0],
            done: true,
        };
        for _ in 0..3000 {
            agent.train_on_batch(std::slice::from_ref(&t), &mut r);
        }
        let q = agent.q_value(&[0.0], &[0.0]);
        assert!((q - 1.0).abs() < 0.15, "Q = {q}");
    }

    #[test]
    fn actor_moves_toward_higher_q_action() {
        // Reward = action (bigger action ⇒ bigger reward, done episodes).
        // After training the actor should output a large positive action.
        let mut agent = Td3Agent::new(Td3Config::new(1, 1), &mut rng());
        let mut r = rng();
        for i in 0..3000 {
            let a = if i % 3 == 0 {
                -0.8
            } else {
                (i % 10) as f64 / 5.0 - 1.0
            };
            let t = Transition {
                state: vec![0.0],
                action: vec![a],
                reward: a,
                next_state: vec![0.0],
                done: true,
            };
            agent.train_on_batch(&[t], &mut r);
        }
        let out = agent.act(&[0.0])[0];
        assert!(out > 0.5, "actor output {out} should approach +1");
    }

    #[test]
    fn targets_lag_behind_online_networks() {
        let mut agent = Td3Agent::new(Td3Config::new(1, 1), &mut rng());
        let snapshot = agent.actor_target.clone();
        let mut r = rng();
        let batch = vec![transition(0.1, 0.2, 0.5, 0.3)];
        for _ in 0..4 {
            agent.train_on_batch(&batch, &mut r);
        }
        // Online actor changed; target moved but only by a τ-sized amount.
        let online_diff: f64 = agent
            .actor
            .params()
            .iter()
            .zip(snapshot.params())
            .map(|(a, b)| (a - b).abs())
            .sum();
        let target_diff: f64 = agent
            .actor_target
            .params()
            .iter()
            .zip(snapshot.params())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(online_diff > 0.0);
        assert!(target_diff < online_diff, "targets must trail online nets");
    }

    #[test]
    fn policy_delay_gates_actor_updates() {
        let cfg = Td3Config {
            policy_delay: 4,
            ..Td3Config::new(1, 1)
        };
        let mut agent = Td3Agent::new(cfg, &mut rng());
        let actor_before = agent.actor.params().to_vec();
        let mut r = rng();
        let batch = vec![transition(0.1, 0.2, 0.5, 0.3)];
        // 3 steps < delay: actor untouched.
        for _ in 0..3 {
            agent.train_on_batch(&batch, &mut r);
        }
        assert_eq!(agent.actor.params(), actor_before.as_slice());
        // 4th step triggers the policy update.
        agent.train_on_batch(&batch, &mut r);
        assert_ne!(agent.actor.params(), actor_before.as_slice());
    }

    #[test]
    fn reused_workspace_matches_wrapper() {
        // Same seed, same batches: the reusable-workspace path and the
        // allocating wrapper must be indistinguishable.
        let run = |reuse: bool| {
            let mut r = StdRng::seed_from_u64(9);
            let mut agent = Td3Agent::new(Td3Config::new(2, 1), &mut r);
            let mut ws = TrainWorkspace::new(agent.config(), 4);
            let mut tds = Vec::new();
            for i in 0..12 {
                let batch: Vec<Transition> = (0..3)
                    .map(|j| Transition {
                        state: vec![0.1 * i as f64, -0.05 * j as f64],
                        action: vec![0.2],
                        reward: (i + j) as f64 * 0.1,
                        next_state: vec![0.3, -0.3],
                        done: j == 2,
                    })
                    .collect();
                if reuse {
                    ws.clear();
                    for t in &batch {
                        ws.push(t);
                    }
                    tds.extend_from_slice(agent.train_batched(&mut ws, &mut r));
                } else {
                    tds.extend(agent.train_on_batch(&batch, &mut r));
                }
            }
            (tds, agent.act(&[0.4, -0.4]))
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn act_into_matches_act_tightly() {
        // The zero-alloc path uses the four-lane dot kernel, whose
        // summation order differs from the scalar `act`; values agree to
        // tight relative tolerance.
        let agent = Td3Agent::new(Td3Config::new(3, 2), &mut rng());
        let mut scratch = agent.act_scratch();
        let mut out = vec![0.0; 2];
        for s in [[0.0, 0.0, 0.0], [0.5, -1.2, 3.0], [-0.1, 0.1, 0.9]] {
            agent.act_into(&s, &mut out, &mut scratch);
            for (a, b) in out.iter().zip(agent.act(&s)) {
                assert!((a - b).abs() < 1e-12 * (1.0 + b.abs()), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn act_exploring_into_matches_allocating_path() {
        let agent = Td3Agent::new(Td3Config::new(2, 1), &mut rng());
        let mut scratch = agent.act_scratch();
        let mut out = vec![0.0; 1];
        let a = agent.act_exploring(&[0.5, -0.5], &mut StdRng::seed_from_u64(42));
        agent.act_exploring_into(
            &[0.5, -0.5],
            &mut out,
            &mut scratch,
            &mut StdRng::seed_from_u64(42),
        );
        // Same RNG draw order, so the noise is identical; the underlying
        // forward passes differ only in kernel summation order.
        for (x, y) in out.iter().zip(&a) {
            assert!((x - y).abs() < 1e-12 * (1.0 + y.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn workspace_gathers_and_clears() {
        let cfg = Td3Config::new(2, 1);
        let mut ws = TrainWorkspace::new(&cfg, 3);
        assert!(ws.is_empty());
        assert_eq!(ws.max_batch(), 3);
        ws.push(&Transition {
            state: vec![1.0, 2.0],
            action: vec![0.5],
            reward: 7.0,
            next_state: vec![3.0, 4.0],
            done: false,
        });
        assert_eq!(ws.len(), 1);
        assert_eq!(ws.state_row(0), &[1.0, 2.0]);
        assert_eq!(ws.action_row(0), &[0.5]);
        assert_eq!(ws.reward_row(0), 7.0);
        ws.clear();
        assert!(ws.is_empty());
    }

    #[test]
    #[should_panic(expected = "workspace full")]
    fn workspace_rejects_overfill() {
        let cfg = Td3Config::new(1, 1);
        let mut ws = TrainWorkspace::new(&cfg, 1);
        ws.push(&transition(0.0, 0.0, 0.0, 0.0));
        ws.push(&transition(0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "state dimension mismatch")]
    fn workspace_rejects_wrong_state_dim() {
        let cfg = Td3Config::new(2, 1);
        let mut ws = TrainWorkspace::new(&cfg, 1);
        ws.push(&transition(0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let mk = || {
            let mut r = StdRng::seed_from_u64(5);
            let mut agent = Td3Agent::new(Td3Config::new(2, 1), &mut r);
            let batch = vec![Transition {
                state: vec![0.1, -0.1],
                action: vec![0.2],
                reward: 0.5,
                next_state: vec![0.3, -0.3],
                done: false,
            }];
            for _ in 0..10 {
                agent.train_on_batch(&batch, &mut r);
            }
            agent.act(&[0.3, -0.3])
        };
        assert_eq!(mk(), mk());
    }
}
