//! Twin Delayed Deep Deterministic policy gradient (TD3, Fujimoto et al.
//! 2018) — the agent architecture of the paper's Algorithm 2.

use self::rand_distr_free::sample_standard_normal;
use crate::{Activation, Adam, Mlp, Transition};
use rand::Rng;

/// Minimal Box–Muller standard normal sampler so we only depend on `rand`'s
/// uniform source.
mod rand_distr_free {
    use rand::Rng;

    pub fn sample_standard_normal(rng: &mut impl Rng) -> f64 {
        // Box–Muller; u1 in (0,1] to avoid ln(0).
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// Hyper-parameters for a [`Td3Agent`].
#[derive(Debug, Clone, PartialEq)]
pub struct Td3Config {
    /// State dimension.
    pub state_dim: usize,
    /// Action dimension (actions are tanh-bounded to `[−1, 1]`).
    pub action_dim: usize,
    /// Hidden layer widths for actor and critics.
    pub hidden: Vec<usize>,
    /// Actor learning rate.
    pub actor_lr: f64,
    /// Critic learning rate.
    pub critic_lr: f64,
    /// Discount factor γ.
    pub gamma: f64,
    /// Polyak averaging coefficient τ for target networks.
    pub tau: f64,
    /// Actor/target update period `d` (delayed policy updates).
    pub policy_delay: u64,
    /// Target-policy smoothing noise σ̃.
    pub policy_noise: f64,
    /// Smoothing noise clip `c`.
    pub noise_clip: f64,
    /// Exploration noise σ added by [`Td3Agent::act_exploring`].
    pub exploration_noise: f64,
}

impl Td3Config {
    /// Defaults from the TD3 paper, scaled for the small PTA control
    /// problem: hidden `[64, 64]`, lr 1e−3, γ 0.99, τ 0.005, delay 2,
    /// σ̃ 0.2 clipped at 0.5, exploration σ 0.1.
    pub fn new(state_dim: usize, action_dim: usize) -> Self {
        Self {
            state_dim,
            action_dim,
            hidden: vec![64, 64],
            actor_lr: 1e-3,
            critic_lr: 1e-3,
            gamma: 0.99,
            tau: 0.005,
            policy_delay: 2,
            policy_noise: 0.2,
            noise_clip: 0.5,
            exploration_noise: 0.1,
        }
    }
}

/// A TD3 actor–critic agent: deterministic tanh policy, twin Q critics,
/// target networks with Polyak updates, delayed policy updates and
/// target-policy smoothing.
#[derive(Debug, Clone)]
pub struct Td3Agent {
    config: Td3Config,
    actor: Mlp,
    actor_target: Mlp,
    critic1: Mlp,
    critic2: Mlp,
    critic1_target: Mlp,
    critic2_target: Mlp,
    actor_opt: Adam,
    critic1_opt: Adam,
    critic2_opt: Adam,
    train_steps: u64,
}

impl Td3Agent {
    /// Creates an agent with freshly initialized networks.
    ///
    /// # Panics
    ///
    /// Panics if `state_dim` or `action_dim` is zero.
    pub fn new(config: Td3Config, rng: &mut impl Rng) -> Self {
        assert!(
            config.state_dim > 0 && config.action_dim > 0,
            "zero dimension"
        );
        let mut actor_dims = vec![config.state_dim];
        actor_dims.extend(&config.hidden);
        actor_dims.push(config.action_dim);
        let mut critic_dims = vec![config.state_dim + config.action_dim];
        critic_dims.extend(&config.hidden);
        critic_dims.push(1);

        let actor = Mlp::new(&actor_dims, Activation::Tanh, rng);
        let critic1 = Mlp::new(&critic_dims, Activation::Linear, rng);
        let critic2 = Mlp::new(&critic_dims, Activation::Linear, rng);
        let actor_target = actor.clone();
        let critic1_target = critic1.clone();
        let critic2_target = critic2.clone();
        let actor_opt = Adam::new(actor.num_params(), config.actor_lr);
        let critic1_opt = Adam::new(critic1.num_params(), config.critic_lr);
        let critic2_opt = Adam::new(critic2.num_params(), config.critic_lr);
        Self {
            config,
            actor,
            actor_target,
            critic1,
            critic2,
            critic1_target,
            critic2_target,
            actor_opt,
            critic1_opt,
            critic2_opt,
            train_steps: 0,
        }
    }

    /// The agent's configuration.
    pub fn config(&self) -> &Td3Config {
        &self.config
    }

    /// Number of [`Td3Agent::train_on_batch`] calls so far.
    pub fn train_steps(&self) -> u64 {
        self.train_steps
    }

    /// The six networks in persistence order: actor, actor target,
    /// critic 1, critic 2, critic-1 target, critic-2 target.
    pub fn networks(&self) -> [&Mlp; 6] {
        [
            &self.actor,
            &self.actor_target,
            &self.critic1,
            &self.critic2,
            &self.critic1_target,
            &self.critic2_target,
        ]
    }

    /// Reassembles an agent from stored networks (same order as
    /// [`Td3Agent::networks`]) and a training-step counter. Optimizer
    /// moments and replay contents restart fresh.
    ///
    /// # Errors
    ///
    /// Returns a description when the network shapes disagree with the
    /// configuration.
    pub fn from_networks(
        config: Td3Config,
        networks: Vec<Mlp>,
        train_steps: u64,
    ) -> Result<Self, String> {
        if networks.len() != 6 {
            return Err(format!("expected 6 networks, got {}", networks.len()));
        }
        let mut it = networks.into_iter();
        let actor = it.next().expect("len checked");
        let actor_target = it.next().expect("len checked");
        let critic1 = it.next().expect("len checked");
        let critic2 = it.next().expect("len checked");
        let critic1_target = it.next().expect("len checked");
        let critic2_target = it.next().expect("len checked");
        if actor.input_dim() != config.state_dim || actor.output_dim() != config.action_dim {
            return Err("actor shape disagrees with config".into());
        }
        if critic1.input_dim() != config.state_dim + config.action_dim || critic1.output_dim() != 1
        {
            return Err("critic shape disagrees with config".into());
        }
        let actor_opt = Adam::new(actor.num_params(), config.actor_lr);
        let critic1_opt = Adam::new(critic1.num_params(), config.critic_lr);
        let critic2_opt = Adam::new(critic2.num_params(), config.critic_lr);
        Ok(Self {
            config,
            actor,
            actor_target,
            critic1,
            critic2,
            critic1_target,
            critic2_target,
            actor_opt,
            critic1_opt,
            critic2_opt,
            train_steps,
        })
    }

    /// Deterministic policy action, each component in `[−1, 1]`.
    pub fn act(&self, state: &[f64]) -> Vec<f64> {
        self.actor.forward(state)
    }

    /// Policy action with Gaussian exploration noise, clipped to `[−1, 1]`.
    pub fn act_exploring(&self, state: &[f64], rng: &mut impl Rng) -> Vec<f64> {
        self.act(state)
            .into_iter()
            .map(|a| {
                (a + self.config.exploration_noise * sample_standard_normal(rng)).clamp(-1.0, 1.0)
            })
            .collect()
    }

    /// Q-value of `(state, action)` under the first critic.
    pub fn q_value(&self, state: &[f64], action: &[f64]) -> f64 {
        let sa = [state, action].concat();
        self.critic1.forward(&sa)[0]
    }

    /// One TD3 training step on a batch (Algorithm 2 lines 9–18). Returns
    /// the per-sample TD errors `y − Q₁(s,a)` computed *before* the update,
    /// which feed priority refreshes.
    ///
    /// An empty batch is a no-op returning an empty vector.
    pub fn train_on_batch(&mut self, batch: &[Transition], rng: &mut impl Rng) -> Vec<f64> {
        if batch.is_empty() {
            return Vec::new();
        }
        let n = batch.len() as f64;
        let cfg = self.config.clone();

        // --- targets with smoothed target policy ---
        let mut targets = Vec::with_capacity(batch.len());
        for t in batch {
            let mut a2 = self.actor_target.forward(&t.next_state);
            for a in &mut a2 {
                let eps = (cfg.policy_noise * sample_standard_normal(rng))
                    .clamp(-cfg.noise_clip, cfg.noise_clip);
                *a = (*a + eps).clamp(-1.0, 1.0);
            }
            let sa2 = [t.next_state.as_slice(), a2.as_slice()].concat();
            let q1 = self.critic1_target.forward(&sa2)[0];
            let q2 = self.critic2_target.forward(&sa2)[0];
            let not_done = if t.done { 0.0 } else { 1.0 };
            targets.push(t.reward + cfg.gamma * not_done * q1.min(q2));
        }

        // --- critic updates: L = 1/N Σ (Q(s,a) − y)² ---
        let mut td_errors = Vec::with_capacity(batch.len());
        let mut g1 = vec![0.0; self.critic1.num_params()];
        let mut g2 = vec![0.0; self.critic2.num_params()];
        for (t, &y) in batch.iter().zip(&targets) {
            let sa = [t.state.as_slice(), t.action.as_slice()].concat();
            let c1 = self.critic1.forward_cached(&sa);
            let c2 = self.critic2.forward_cached(&sa);
            let q1 = c1.output()[0];
            let q2 = c2.output()[0];
            td_errors.push(y - q1);
            self.critic1.backward(&c1, &[2.0 * (q1 - y) / n], &mut g1);
            self.critic2.backward(&c2, &[2.0 * (q2 - y) / n], &mut g2);
        }
        self.critic1_opt.step(self.critic1.params_mut(), &g1);
        self.critic2_opt.step(self.critic2.params_mut(), &g2);

        self.train_steps += 1;

        // --- delayed policy + target updates ---
        if self.train_steps.is_multiple_of(cfg.policy_delay) {
            let mut ga = vec![0.0; self.actor.num_params()];
            let mut scratch = vec![0.0; self.critic1.num_params()];
            for t in batch {
                let ac = self.actor.forward_cached(&t.state);
                let a = ac.output().to_vec();
                let sa = [t.state.as_slice(), a.as_slice()].concat();
                let cc = self.critic1.forward_cached(&sa);
                // Maximize Q ⇒ minimize −Q: ∂(−Q)/∂input, action slice.
                scratch.iter_mut().for_each(|v| *v = 0.0);
                let gin = self.critic1.backward(&cc, &[-1.0 / n], &mut scratch);
                let ga_out = &gin[cfg.state_dim..];
                self.actor.backward(&ac, ga_out, &mut ga);
            }
            self.actor_opt.step(self.actor.params_mut(), &ga);
            self.actor_target.soft_update_from(&self.actor, cfg.tau);
            self.critic1_target.soft_update_from(&self.critic1, cfg.tau);
            self.critic2_target.soft_update_from(&self.critic2, cfg.tau);
        }
        td_errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2024)
    }

    fn transition(s: f64, a: f64, r: f64, s2: f64) -> Transition {
        Transition {
            state: vec![s],
            action: vec![a],
            reward: r,
            next_state: vec![s2],
            done: false,
        }
    }

    #[test]
    fn actions_are_bounded() {
        let agent = Td3Agent::new(Td3Config::new(3, 2), &mut rng());
        let a = agent.act(&[10.0, -10.0, 0.0]);
        assert_eq!(a.len(), 2);
        assert!(a.iter().all(|v| (-1.0..=1.0).contains(v)));
    }

    #[test]
    fn exploration_noise_stays_bounded() {
        let agent = Td3Agent::new(Td3Config::new(2, 1), &mut rng());
        let mut r = rng();
        for _ in 0..100 {
            let a = agent.act_exploring(&[0.5, -0.5], &mut r);
            assert!((-1.0..=1.0).contains(&a[0]));
        }
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut agent = Td3Agent::new(Td3Config::new(2, 1), &mut rng());
        let before = agent.train_steps();
        let errs = agent.train_on_batch(&[], &mut rng());
        assert!(errs.is_empty());
        assert_eq!(agent.train_steps(), before);
    }

    #[test]
    fn td_errors_have_batch_length() {
        let mut agent = Td3Agent::new(Td3Config::new(1, 1), &mut rng());
        let batch = vec![
            transition(0.0, 0.1, 1.0, 0.5),
            transition(0.5, -0.2, 0.0, 1.0),
        ];
        let errs = agent.train_on_batch(&batch, &mut rng());
        assert_eq!(errs.len(), 2);
        assert!(errs.iter().all(|e| e.is_finite()));
    }

    #[test]
    fn critic_learns_constant_reward() {
        // One state, one action, reward always 1, episode ends: Q → 1.
        let mut agent = Td3Agent::new(Td3Config::new(1, 1), &mut rng());
        let mut r = rng();
        let t = Transition {
            state: vec![0.0],
            action: vec![0.0],
            reward: 1.0,
            next_state: vec![0.0],
            done: true,
        };
        for _ in 0..3000 {
            agent.train_on_batch(std::slice::from_ref(&t), &mut r);
        }
        let q = agent.q_value(&[0.0], &[0.0]);
        assert!((q - 1.0).abs() < 0.15, "Q = {q}");
    }

    #[test]
    fn actor_moves_toward_higher_q_action() {
        // Reward = action (bigger action ⇒ bigger reward, done episodes).
        // After training the actor should output a large positive action.
        let mut agent = Td3Agent::new(Td3Config::new(1, 1), &mut rng());
        let mut r = rng();
        for i in 0..3000 {
            let a = if i % 3 == 0 {
                -0.8
            } else {
                (i % 10) as f64 / 5.0 - 1.0
            };
            let t = Transition {
                state: vec![0.0],
                action: vec![a],
                reward: a,
                next_state: vec![0.0],
                done: true,
            };
            agent.train_on_batch(&[t], &mut r);
        }
        let out = agent.act(&[0.0])[0];
        assert!(out > 0.5, "actor output {out} should approach +1");
    }

    #[test]
    fn targets_lag_behind_online_networks() {
        let mut agent = Td3Agent::new(Td3Config::new(1, 1), &mut rng());
        let snapshot = agent.actor_target.clone();
        let mut r = rng();
        let batch = vec![transition(0.1, 0.2, 0.5, 0.3)];
        for _ in 0..4 {
            agent.train_on_batch(&batch, &mut r);
        }
        // Online actor changed; target moved but only by a τ-sized amount.
        let online_diff: f64 = agent
            .actor
            .params()
            .iter()
            .zip(snapshot.params())
            .map(|(a, b)| (a - b).abs())
            .sum();
        let target_diff: f64 = agent
            .actor_target
            .params()
            .iter()
            .zip(snapshot.params())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(online_diff > 0.0);
        assert!(target_diff < online_diff, "targets must trail online nets");
    }

    #[test]
    fn policy_delay_gates_actor_updates() {
        let cfg = Td3Config {
            policy_delay: 4,
            ..Td3Config::new(1, 1)
        };
        let mut agent = Td3Agent::new(cfg, &mut rng());
        let actor_before = agent.actor.params().to_vec();
        let mut r = rng();
        let batch = vec![transition(0.1, 0.2, 0.5, 0.3)];
        // 3 steps < delay: actor untouched.
        for _ in 0..3 {
            agent.train_on_batch(&batch, &mut r);
        }
        assert_eq!(agent.actor.params(), actor_before.as_slice());
        // 4th step triggers the policy update.
        agent.train_on_batch(&batch, &mut r);
        assert_ne!(agent.actor.params(), actor_before.as_slice());
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let mk = || {
            let mut r = StdRng::seed_from_u64(5);
            let mut agent = Td3Agent::new(Td3Config::new(2, 1), &mut r);
            let batch = vec![Transition {
                state: vec![0.1, -0.1],
                action: vec![0.2],
                reward: 0.5,
                next_state: vec![0.3, -0.3],
                done: false,
            }];
            for _ in 0..10 {
                agent.train_on_batch(&batch, &mut r);
            }
            agent.act(&[0.3, -0.3])
        };
        assert_eq!(mk(), mk());
    }
}
