//! Uniform experience replay.

use rand::Rng;

/// One `(s, a, r, s′, done)` transition.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// State the action was taken in.
    pub state: Vec<f64>,
    /// Action taken.
    pub action: Vec<f64>,
    /// Reward observed.
    pub reward: f64,
    /// Successor state.
    pub next_state: Vec<f64>,
    /// Whether the episode terminated at `next_state` (bootstrapping stops).
    pub done: bool,
}

/// Fixed-capacity FIFO ring buffer with uniform random sampling.
///
/// # Example
///
/// ```
/// use rlpta_rl::{ReplayBuffer, Transition};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut buf = ReplayBuffer::new(2);
/// let t = Transition {
///     state: vec![0.0], action: vec![0.0], reward: 1.0,
///     next_state: vec![1.0], done: false,
/// };
/// buf.push(t.clone());
/// buf.push(t.clone());
/// buf.push(t); // evicts the oldest
/// assert_eq!(buf.len(), 2);
/// let mut rng = StdRng::seed_from_u64(0);
/// assert_eq!(buf.sample(3, &mut rng).len(), 3); // sampling with replacement
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReplayBuffer {
    capacity: usize,
    items: Vec<Transition>,
    head: usize,
}

impl ReplayBuffer {
    /// Creates a buffer holding at most `capacity` transitions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            capacity,
            items: Vec::with_capacity(capacity.min(1024)),
            head: 0,
        }
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` if the buffer holds nothing.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Maximum number of transitions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends a transition, evicting the oldest when full.
    pub fn push(&mut self, t: Transition) {
        if self.items.len() < self.capacity {
            self.items.push(t);
        } else {
            self.items[self.head] = t;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Samples `n` transitions uniformly **with replacement** (standard
    /// practice for small RL batches). Returns an empty vector when the
    /// buffer is empty.
    ///
    /// Thin wrapper over [`ReplayBuffer::sample_indices_into`] that clones
    /// each drawn transition; the training hot path samples indices and
    /// gathers straight into its workspace instead.
    pub fn sample(&self, n: usize, rng: &mut impl Rng) -> Vec<Transition> {
        let mut idx = Vec::with_capacity(n);
        self.sample_indices_into(n, rng, &mut idx);
        idx.into_iter().map(|i| self.items[i].clone()).collect()
    }

    /// Draws `n` uniform-with-replacement slot indices into `out` (cleared
    /// first). Allocation-free once `out` has capacity `n`; an empty buffer
    /// leaves `out` empty. The caller gathers via [`ReplayBuffer::get`].
    pub fn sample_indices_into(&self, n: usize, rng: &mut impl Rng, out: &mut Vec<usize>) {
        out.clear();
        if self.items.is_empty() {
            return;
        }
        out.extend((0..n).map(|_| rng.gen_range(0..self.items.len())));
    }

    /// The transition in slot `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn get(&self, index: usize) -> &Transition {
        &self.items[index]
    }

    /// Iterates over the stored transitions in arbitrary order.
    pub fn iter(&self) -> std::slice::Iter<'_, Transition> {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(r: f64) -> Transition {
        Transition {
            state: vec![r],
            action: vec![0.0],
            reward: r,
            next_state: vec![r + 1.0],
            done: false,
        }
    }

    #[test]
    fn push_and_len() {
        let mut b = ReplayBuffer::new(10);
        assert!(b.is_empty());
        b.push(t(1.0));
        b.push(t(2.0));
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn fifo_eviction() {
        let mut b = ReplayBuffer::new(3);
        for i in 0..5 {
            b.push(t(i as f64));
        }
        assert_eq!(b.len(), 3);
        let rewards: Vec<f64> = b.iter().map(|x| x.reward).collect();
        // 0 and 1 evicted.
        assert!(!rewards.contains(&0.0));
        assert!(!rewards.contains(&1.0));
        assert!(rewards.contains(&4.0));
    }

    #[test]
    fn sample_empty_returns_empty() {
        let b = ReplayBuffer::new(4);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(b.sample(8, &mut rng).is_empty());
    }

    #[test]
    fn sample_with_replacement_exceeds_len() {
        let mut b = ReplayBuffer::new(4);
        b.push(t(1.0));
        let mut rng = StdRng::seed_from_u64(0);
        let s = b.sample(10, &mut rng);
        assert_eq!(s.len(), 10);
        assert!(s.iter().all(|x| x.reward == 1.0));
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let mut b = ReplayBuffer::new(16);
        for i in 0..16 {
            b.push(t(i as f64));
        }
        let s1 = b.sample(5, &mut StdRng::seed_from_u64(7));
        let s2 = b.sample(5, &mut StdRng::seed_from_u64(7));
        assert_eq!(s1, s2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = ReplayBuffer::new(0);
    }
}
