//! From-scratch reinforcement learning: MLP + Adam + TD3 with prioritized
//! and shared replay.
//!
//! This crate is the neural substrate of the paper's RL-S stepping agent.
//! It deliberately avoids any tensor framework — the TD3 networks are tiny
//! (two hidden layers of a few dozen units), so a hand-rolled dense
//! [`Mlp`] with exact analytic backpropagation and an [`Adam`] optimizer is
//! simpler, fully deterministic, and fast.
//!
//! Components, mapping to §4 of the paper:
//!
//! * [`Mlp`]/[`Adam`] — function approximators and optimizer,
//! * [`Td3Agent`] — twin critics, target networks, delayed policy update,
//!   target-policy smoothing (Algorithm 2),
//! * [`ReplayBuffer`] — uniform ring buffer,
//! * [`SumTree`]/[`PrioritizedReplay`] — TD-error priority sampling (§4.4),
//! * the public/shared buffer for dual-agent collaborative learning (§4.3)
//!   is composed from these primitives in `rlpta-core`.
//!
//! # Example
//!
//! ```
//! use rlpta_rl::{Td3Agent, Td3Config, Transition};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut agent = Td3Agent::new(Td3Config::new(3, 1), &mut rng);
//! let a = agent.act(&[0.1, -0.2, 0.3]);
//! assert!(a[0] >= -1.0 && a[0] <= 1.0); // tanh-bounded action
//! let t = Transition {
//!     state: vec![0.1, -0.2, 0.3],
//!     action: a.clone(),
//!     reward: 1.0,
//!     next_state: vec![0.0, 0.0, 0.0],
//!     done: false,
//! };
//! let _td_error = agent.train_on_batch(&[t], &mut rng);
//! ```

// `deny` rather than the workspace-usual `forbid`: the GEMM micro-kernels
// in [`kernel`] runtime-dispatch to `#[target_feature(enable = "avx2,fma")]`
// builds, and calling a target-feature function is an `unsafe` operation
// even though every call site first proves the features exist via
// `is_x86_feature_detected!`. Those guarded dispatch sites are the only
// sanctioned `#[allow(unsafe_code)]` in the crate.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod adam;
mod buffer;
pub mod kernel;
mod mlp;
mod persist;
mod priority;
mod sumtree;
mod td3;

pub use adam::Adam;
pub use buffer::{ReplayBuffer, Transition};
pub use kernel::{ActScratch, BatchCache};
pub use mlp::{Activation, Mlp};
pub use priority::PrioritizedReplay;
pub use sumtree::SumTree;
pub use td3::{Td3Agent, Td3Config, TrainWorkspace};
