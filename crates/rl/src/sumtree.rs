//! Binary sum tree for proportional priority sampling.

/// A complete binary tree whose leaves hold non-negative priorities and
/// whose internal nodes hold the sum of their children — `O(log n)` update
/// and proportional sampling, exactly the structure §4.4 of the paper
/// describes for TD-error priority sampling.
///
/// # Example
///
/// ```
/// use rlpta_rl::SumTree;
///
/// let mut t = SumTree::new(4);
/// t.set(0, 1.0);
/// t.set(1, 3.0);
/// assert_eq!(t.total(), 4.0);
/// // Mass in [0,1) lands on leaf 0; mass in [1,4) lands on leaf 1.
/// assert_eq!(t.find(0.5), 0);
/// assert_eq!(t.find(2.0), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SumTree {
    /// Requested number of usable leaves.
    capacity: usize,
    /// Actual leaf count, padded to a power of two so every leaf sits at the
    /// same depth and cumulative mass follows leaf order.
    leaves: usize,
    /// Heap-style storage: `tree[0]` is the root; leaves start at
    /// `leaves − 1`.
    tree: Vec<f64>,
}

impl SumTree {
    /// Creates a tree with `capacity` zero-priority leaves.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        let leaves = capacity.next_power_of_two();
        Self {
            capacity,
            leaves,
            tree: vec![0.0; 2 * leaves - 1],
        }
    }

    /// Number of usable leaves.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total priority mass (the root).
    pub fn total(&self) -> f64 {
        self.tree[0]
    }

    /// Priority of leaf `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity`.
    pub fn get(&self, index: usize) -> f64 {
        assert!(index < self.capacity, "leaf index out of bounds");
        self.tree[self.leaves - 1 + index]
    }

    /// Sets the priority of leaf `index`, updating ancestor sums.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity` or `priority` is negative/non-finite.
    pub fn set(&mut self, index: usize, priority: f64) {
        assert!(index < self.capacity, "leaf index out of bounds");
        assert!(
            priority.is_finite() && priority >= 0.0,
            "priority must be ≥ 0"
        );
        let mut pos = self.leaves - 1 + index;
        let delta = priority - self.tree[pos];
        self.tree[pos] = priority;
        while pos > 0 {
            pos = (pos - 1) / 2;
            self.tree[pos] += delta;
        }
    }

    /// Finds the leaf index owning cumulative mass `value ∈ [0, total)`:
    /// descends from the root, going left when the left subtree's sum covers
    /// `value`, otherwise subtracting it and going right.
    ///
    /// Values outside the range are clamped to the nearest end.
    pub fn find(&self, value: f64) -> usize {
        let mut v = value.clamp(0.0, self.total().max(0.0));
        let mut pos = 0usize;
        while pos < self.leaves - 1 {
            let left = 2 * pos + 1;
            let right = left + 1;
            if v < self.tree[left] || self.tree[right] == 0.0 {
                pos = left;
            } else {
                v -= self.tree[left];
                pos = right;
            }
        }
        (pos - (self.leaves - 1)).min(self.capacity - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn total_tracks_sets() {
        let mut t = SumTree::new(8);
        t.set(0, 2.0);
        t.set(3, 5.0);
        t.set(7, 1.0);
        assert_eq!(t.total(), 8.0);
        t.set(3, 0.0);
        assert_eq!(t.total(), 3.0);
        assert_eq!(t.get(0), 2.0);
    }

    #[test]
    fn parent_sum_invariant_after_random_updates() {
        let mut t = SumTree::new(16);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            t.set(rng.gen_range(0..16), rng.gen_range(0.0..10.0));
        }
        // Verify every internal node is the sum of its children.
        for pos in 0..15 {
            let sum = t.tree[2 * pos + 1] + t.tree[2 * pos + 2];
            assert!((t.tree[pos] - sum).abs() < 1e-9, "node {pos}");
        }
    }

    #[test]
    fn find_respects_mass_boundaries() {
        let mut t = SumTree::new(4);
        t.set(0, 1.0);
        t.set(1, 2.0);
        t.set(2, 3.0);
        t.set(3, 4.0);
        assert_eq!(t.find(0.5), 0);
        assert_eq!(t.find(1.5), 1);
        assert_eq!(t.find(3.5), 2);
        assert_eq!(t.find(9.9), 3);
    }

    #[test]
    fn zero_priority_leaves_are_never_found() {
        let mut t = SumTree::new(8);
        t.set(2, 1.0);
        t.set(5, 1.0);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let leaf = t.find(rng.gen_range(0.0..t.total()));
            assert!(leaf == 2 || leaf == 5, "found zero-priority leaf {leaf}");
        }
    }

    #[test]
    fn sampling_frequency_is_proportional() {
        let mut t = SumTree::new(4);
        t.set(0, 1.0);
        t.set(1, 9.0);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let mut hits = [0usize; 4];
        for _ in 0..n {
            hits[t.find(rng.gen_range(0.0..t.total()))] += 1;
        }
        let ratio = hits[1] as f64 / hits[0] as f64;
        assert!((ratio - 9.0).abs() < 1.0, "ratio = {ratio}");
    }

    #[test]
    fn non_power_of_two_capacity() {
        let mut t = SumTree::new(5);
        for i in 0..5 {
            t.set(i, 1.0);
        }
        assert_eq!(t.total(), 5.0);
        for i in 0..5 {
            assert_eq!(t.find(i as f64 + 0.5), i);
        }
    }

    #[test]
    #[should_panic(expected = "priority must be")]
    fn negative_priority_rejected() {
        SumTree::new(2).set(0, -1.0);
    }
}
