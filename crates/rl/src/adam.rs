//! Adam optimizer over flat parameter vectors.

/// Adam (Kingma & Ba, 2015) with bias correction, matched to the flat
/// parameter layout of [`Mlp`](crate::Mlp).
///
/// # Example
///
/// ```
/// use rlpta_rl::Adam;
///
/// // Minimize f(x) = (x − 3)² from x = 0.
/// let mut x = vec![0.0];
/// let mut opt = Adam::new(1, 0.1);
/// for _ in 0..500 {
///     let grad = vec![2.0 * (x[0] - 3.0)];
///     opt.step(&mut x, &grad);
/// }
/// assert!((x[0] - 3.0).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Adam {
    /// Creates an optimizer for `n` parameters with learning rate `lr` and
    /// the standard β₁ = 0.9, β₂ = 0.999, ε = 1e−8.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive and finite.
    pub fn new(n: usize, lr: f64) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: vec![0.0; n],
            v: vec![0.0; n],
        }
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f64 {
        self.lr
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one Adam update to `params` given `grads`: a single fused
    /// walk of the parameter slab updating moments and parameters together
    /// ([`crate::kernel::adam_walk`]), with the bias corrections hoisted to
    /// per-step scalars. Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree with the optimizer state.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), self.m.len(), "parameter length mismatch");
        assert_eq!(grads.len(), self.m.len(), "gradient length mismatch");
        self.t += 1;
        crate::kernel::adam_walk(
            crate::kernel::AdamScalars {
                beta1: self.beta1,
                nbeta1: 1.0 - self.beta1,
                beta2: self.beta2,
                nbeta2: 1.0 - self.beta2,
                bias1: 1.0 - self.beta1.powi(self.t as i32),
                bias2: 1.0 - self.beta2.powi(self.t as i32),
                lr: self.lr,
                eps: self.eps,
            },
            params,
            grads,
            &mut self.m,
            &mut self.v,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_step_magnitude_is_lr() {
        // With bias correction the very first step is ≈ lr·sign(g).
        let mut p = vec![0.0];
        let mut opt = Adam::new(1, 0.01);
        opt.step(&mut p, &[5.0]);
        assert!((p[0] + 0.01).abs() < 1e-6, "step was {}", p[0]);
    }

    #[test]
    fn hand_computed_second_step() {
        let mut p = vec![0.0];
        let mut opt = Adam::new(1, 0.1);
        let g = 1.0;
        opt.step(&mut p, &[g]);
        // m1 = 0.1, v1 = 0.001; m̂ = 1, v̂ = 1 → p = −0.1.
        assert!((p[0] + 0.1).abs() < 1e-9);
        opt.step(&mut p, &[g]);
        // m2 = 0.19, v2 = 0.001999; b1t = 0.19, b2t = 0.001999
        // m̂ = 1, v̂ = 1 → another −0.1 step (within ε).
        assert!((p[0] + 0.2).abs() < 1e-6, "p = {}", p[0]);
    }

    #[test]
    fn converges_on_quadratic_bowl() {
        let mut p = vec![5.0, -3.0];
        let mut opt = Adam::new(2, 0.05);
        for _ in 0..2000 {
            let g = vec![2.0 * p[0], 2.0 * p[1]];
            opt.step(&mut p, &g);
        }
        assert!(p[0].abs() < 1e-3 && p[1].abs() < 1e-3, "p = {p:?}");
    }

    #[test]
    fn zero_gradient_is_stationary() {
        let mut p = vec![1.0];
        let mut opt = Adam::new(1, 0.1);
        opt.step(&mut p, &[0.0]);
        assert_eq!(p[0], 1.0);
    }

    #[test]
    fn tracks_steps() {
        let mut opt = Adam::new(1, 0.1);
        assert_eq!(opt.steps(), 0);
        opt.step(&mut [0.0], &[1.0]);
        assert_eq!(opt.steps(), 1);
        assert_eq!(opt.learning_rate(), 0.1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn validates_lengths() {
        let mut opt = Adam::new(2, 0.1);
        opt.step(&mut [0.0], &[1.0]);
    }
}
