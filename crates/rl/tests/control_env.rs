//! End-to-end TD3 validation on a classic continuous-control task,
//! independent of the circuit-simulation setting: a 1-D double integrator
//! ("slide a puck to the origin"). If TD3 cannot solve this, it cannot be
//! trusted to steer PTA steps either.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlpta_rl::{PrioritizedReplay, Td3Agent, Td3Config, Transition};

/// Double integrator: state (position, velocity), action = force ∈ [−1,1].
struct Puck {
    pos: f64,
    vel: f64,
}

impl Puck {
    const DT: f64 = 0.1;

    fn reset(&mut self, seed_pos: f64) {
        self.pos = seed_pos;
        self.vel = 0.0;
    }

    fn state(&self) -> Vec<f64> {
        vec![self.pos, self.vel]
    }

    /// Applies force, returns (reward, done).
    fn step(&mut self, force: f64) -> (f64, bool) {
        self.vel += force.clamp(-1.0, 1.0) * Self::DT;
        self.pos += self.vel * Self::DT;
        let cost = self.pos.abs() + 0.1 * self.vel.abs();
        let done = self.pos.abs() < 0.05 && self.vel.abs() < 0.05;
        (if done { 10.0 } else { -cost }, done)
    }
}

fn train_agent(episodes: usize, seed: u64) -> (Td3Agent, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut agent = Td3Agent::new(
        Td3Config {
            gamma: 0.95,
            ..Td3Config::new(2, 1)
        },
        &mut rng,
    );
    let mut buffer = PrioritizedReplay::new(20_000);
    let mut env = Puck { pos: 0.0, vel: 0.0 };
    for ep in 0..episodes {
        env.reset(if ep % 2 == 0 { 1.0 } else { -0.8 });
        for _ in 0..60 {
            let s = env.state();
            let a = agent.act_exploring(&s, &mut rng);
            let (r, done) = env.step(a[0]);
            buffer.push(Transition {
                state: s,
                action: a,
                reward: r,
                next_state: env.state(),
                done,
            });
            if buffer.len() >= 64 {
                let batch: Vec<Transition> = buffer
                    .sample(64, &mut rng)
                    .into_iter()
                    .map(|(_, t)| t)
                    .collect();
                let td = agent.train_on_batch(&batch, &mut rng);
                // Keep priorities fresh on a subsample.
                for ((idx, _), err) in buffer.sample(8, &mut rng).iter().zip(&td) {
                    buffer.update_priority(*idx, *err);
                }
            }
            if done {
                break;
            }
        }
    }
    (agent, rng)
}

fn rollout_cost(agent: &Td3Agent, start: f64) -> f64 {
    let mut env = Puck { pos: 0.0, vel: 0.0 };
    env.reset(start);
    let mut total = 0.0;
    for _ in 0..60 {
        let a = agent.act(&env.state());
        let (r, done) = env.step(a[0]);
        total -= r.min(0.0); // accumulate positive cost
        if done {
            return total;
        }
    }
    total + 10.0 // penalty for never reaching the goal
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full learning curriculum; run with --release"
)]
fn td3_learns_to_stabilize_the_puck() {
    let (agent, _) = train_agent(60, 17);
    // Untrained reference.
    let mut rng = StdRng::seed_from_u64(99);
    let fresh = Td3Agent::new(Td3Config::new(2, 1), &mut rng);
    let trained_cost = rollout_cost(&agent, 1.0) + rollout_cost(&agent, -0.8);
    let fresh_cost = rollout_cost(&fresh, 1.0) + rollout_cost(&fresh, -0.8);
    assert!(
        trained_cost < 0.8 * fresh_cost,
        "training must cut rollout cost: trained {trained_cost:.2} vs fresh {fresh_cost:.2}"
    );
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full learning curriculum; run with --release"
)]
fn td3_policy_generalizes_to_unseen_starts() {
    let (agent, _) = train_agent(60, 23);
    // Start positions never seen during training.
    let cost = rollout_cost(&agent, 0.5);
    assert!(cost < 30.0, "diverged from unseen start: cost {cost:.2}");
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full learning curriculum; run with --release"
)]
fn trained_policy_pushes_toward_origin() {
    let (agent, _) = train_agent(40, 31);
    // From positive position at rest, the force should be negative-ish.
    let a_pos = agent.act(&[1.0, 0.0])[0];
    let a_neg = agent.act(&[-1.0, 0.0])[0];
    assert!(
        a_pos < a_neg,
        "policy must push opposite to displacement: f(+1)={a_pos:.2}, f(−1)={a_neg:.2}"
    );
}
