//! Property-based tests for the RL substrate: exact gradients on random
//! network shapes, SumTree invariants under arbitrary operation sequences,
//! replay semantics and optimizer totality.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rlpta_rl::{Activation, Adam, Mlp, PrioritizedReplay, ReplayBuffer, SumTree, Transition};

fn transition(tag: f64) -> Transition {
    Transition {
        state: vec![tag],
        action: vec![0.0],
        reward: tag,
        next_state: vec![tag + 1.0],
        done: false,
    }
}

proptest! {
    /// Parameter gradients match central finite differences for random
    /// shapes, inputs and output activations.
    #[test]
    fn mlp_gradient_check(
        seed in 0u64..1000,
        in_dim in 1usize..5,
        hidden in 1usize..10,
        out_dim in 1usize..4,
        tanh_out in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let act = if tanh_out { Activation::Tanh } else { Activation::Linear };
        let mut m = Mlp::new(&[in_dim, hidden, out_dim], act, &mut rng);
        let x: Vec<f64> = (0..in_dim).map(|i| (i as f64 * 0.37 + seed as f64 * 0.01).sin()).collect();
        let cache = m.forward_cached(&x);
        let grad_out: Vec<f64> = cache.output().iter().map(|v| 2.0 * v).collect();
        let mut grads = vec![0.0; m.num_params()];
        m.backward(&cache, &grad_out, &mut grads);
        let loss = |m: &Mlp| -> f64 { m.forward(&x).iter().map(|v| v * v).sum() };
        let h = 1e-6;
        // Check a subset of parameters for speed.
        let stride = (m.num_params() / 10).max(1);
        for k in (0..m.num_params()).step_by(stride) {
            let orig = m.params()[k];
            m.params_mut()[k] = orig + h;
            let lp = loss(&m);
            m.params_mut()[k] = orig - h;
            let lm = loss(&m);
            m.params_mut()[k] = orig;
            let fd = (lp - lm) / (2.0 * h);
            prop_assert!(
                (fd - grads[k]).abs() < 1e-4 * (1.0 + fd.abs()),
                "param {k}: fd {fd} vs {}", grads[k]
            );
        }
    }

    /// SumTree total always equals the sum of its leaves, and `find` always
    /// returns an in-range leaf, no matter the operation sequence.
    #[test]
    fn sumtree_invariants(
        cap in 1usize..40,
        ops in proptest::collection::vec((0usize..40, 0.0f64..100.0), 1..60),
        probe in 0.0f64..1.0,
    ) {
        let mut tree = SumTree::new(cap);
        let mut shadow = vec![0.0f64; cap];
        for (idx, p) in ops {
            let i = idx % cap;
            tree.set(i, p);
            shadow[i] = p;
        }
        let expect: f64 = shadow.iter().sum();
        prop_assert!((tree.total() - expect).abs() <= 1e-9 * expect.max(1.0));
        if tree.total() > 0.0 {
            let leaf = tree.find(probe * tree.total());
            prop_assert!(leaf < cap);
            prop_assert!(shadow[leaf] > 0.0, "found zero-mass leaf {leaf}");
        }
    }

    /// The ring buffer holds exactly the last `capacity` pushes.
    #[test]
    fn replay_keeps_most_recent(cap in 1usize..20, n in 1usize..60) {
        let mut buf = ReplayBuffer::new(cap);
        for i in 0..n {
            buf.push(transition(i as f64));
        }
        prop_assert_eq!(buf.len(), n.min(cap));
        let kept: Vec<f64> = buf.iter().map(|t| t.reward).collect();
        let oldest_kept = n.saturating_sub(cap) as f64;
        for r in kept {
            prop_assert!(r >= oldest_kept, "evicted item {r} still present");
        }
    }

    /// Prioritized replay never returns out-of-range indices and respects
    /// capacity.
    #[test]
    fn prioritized_replay_indices_valid(
        cap in 1usize..16,
        pushes in 1usize..40,
        seed in 0u64..100,
    ) {
        let mut buf = PrioritizedReplay::new(cap);
        for i in 0..pushes {
            buf.push(transition(i as f64));
        }
        prop_assert_eq!(buf.len(), pushes.min(cap));
        let mut rng = StdRng::seed_from_u64(seed);
        for (idx, _) in buf.sample(32, &mut rng) {
            prop_assert!(idx < buf.len());
        }
    }

    /// Adam steps keep parameters finite for any finite gradients.
    #[test]
    fn adam_stays_finite(
        grads in proptest::collection::vec(-1e6f64..1e6, 1..8),
        lr in 1e-5f64..1.0,
    ) {
        let n = grads.len();
        let mut params = vec![0.0; n];
        let mut opt = Adam::new(n, lr);
        for _ in 0..50 {
            opt.step(&mut params, &grads);
        }
        prop_assert!(params.iter().all(|p| p.is_finite()));
        // Adam's per-step movement is bounded by ~lr.
        for p in &params {
            prop_assert!(p.abs() <= 51.0 * lr, "p = {p}, lr = {lr}");
        }
    }

    /// Soft updates converge the target onto the source geometrically.
    #[test]
    fn soft_update_converges(tau in 0.01f64..0.99, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let src = Mlp::new(&[2, 4, 1], Activation::Linear, &mut rng);
        let mut tgt = Mlp::new(&[2, 4, 1], Activation::Linear, &mut rng);
        for _ in 0..300 {
            tgt.soft_update_from(&src, tau);
        }
        let dist: f64 = tgt
            .params()
            .iter()
            .zip(src.params())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        // (1−τ)^300 is tiny for τ ≥ 0.01.
        prop_assert!(dist < 0.2, "distance {dist} at tau {tau}");
    }
}
