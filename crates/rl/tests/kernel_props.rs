//! Property tests pinning the batched zero-allocation kernels to the
//! scalar reference path: the GEMM-backed forward/backward passes must
//! agree with per-sample scalar forward/backward to tight relative
//! tolerance on arbitrary shapes and batch sizes, batched training must be
//! bit-deterministic under a fixed seed, and a persisted agent must replay
//! bit-identical `act_into` stepping decisions after a round-trip.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rlpta_rl::{Activation, BatchCache, Mlp, Td3Agent, Td3Config, TrainWorkspace, Transition};

/// Deterministic pseudo-random inputs spread across `[-2, 2]`.
fn inputs(count: usize, salt: u64) -> Vec<f64> {
    (0..count)
        .map(|i| (((i as u64).wrapping_mul(2654435761).wrapping_add(salt * 97) % 1009) as f64
            / 1009.0)
            * 4.0
            - 2.0)
        .collect()
}

fn rel_close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-12 * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    /// Batched forward rows equal the scalar forward on every row, for
    /// random depths, widths, batch sizes and output activations.
    #[test]
    fn batched_forward_matches_scalar(
        seed in 0u64..500,
        in_dim in 1usize..6,
        h1 in 1usize..12,
        h2 in 1usize..12,
        out_dim in 1usize..4,
        batch in 1usize..40,
        tanh_out in any::<bool>(),
    ) {
        let act = if tanh_out { Activation::Tanh } else { Activation::Linear };
        let m = Mlp::new(&[in_dim, h1, h2, out_dim], act, &mut StdRng::seed_from_u64(seed));
        let x = inputs(batch * in_dim, seed);
        let mut cache = BatchCache::for_mlp(&m, batch);
        m.forward_batch_into(&x, batch, &mut cache);
        for (r, row) in cache.output(batch).chunks_exact(out_dim).enumerate() {
            let scalar = m.forward(&x[r * in_dim..(r + 1) * in_dim]);
            for (d, (a, b)) in row.iter().zip(&scalar).enumerate() {
                prop_assert!(rel_close(*a, *b), "row {r} dim {d}: {a} vs {b}");
            }
        }
    }

    /// Batched backward accumulates the same parameter and input gradients
    /// as running the scalar backward once per row.
    #[test]
    fn batched_backward_matches_scalar(
        seed in 0u64..500,
        in_dim in 1usize..5,
        hidden in 1usize..10,
        out_dim in 1usize..4,
        batch in 1usize..24,
    ) {
        let m = Mlp::new(&[in_dim, hidden, out_dim], Activation::Tanh, &mut StdRng::seed_from_u64(seed));
        let x = inputs(batch * in_dim, seed);
        let go = inputs(batch * out_dim, seed.wrapping_add(31));

        let mut ref_grads = vec![0.0; m.num_params()];
        let mut ref_gx = Vec::new();
        for r in 0..batch {
            let cache = m.forward_cached(&x[r * in_dim..(r + 1) * in_dim]);
            ref_gx.extend(m.backward(&cache, &go[r * out_dim..(r + 1) * out_dim], &mut ref_grads));
        }

        let mut cache = BatchCache::for_mlp(&m, batch);
        m.forward_batch_into(&x, batch, &mut cache);
        let mut grads = vec![0.0; m.num_params()];
        let mut gx = vec![0.0; batch * in_dim];
        m.backward_batch_into(&mut cache, batch, &go, &mut grads, &mut gx);

        for (k, (a, b)) in grads.iter().zip(&ref_grads).enumerate() {
            prop_assert!(rel_close(*a, *b), "grad {k}: {a} vs {b}");
        }
        for (k, (a, b)) in gx.iter().zip(&ref_gx).enumerate() {
            prop_assert!(rel_close(*a, *b), "input grad {k}: {a} vs {b}");
        }
    }

    /// Two identically seeded agents trained through identically gathered
    /// workspaces stay bit-identical: parameters, TD errors and actions.
    #[test]
    fn train_batched_is_seed_deterministic(
        seed in 0u64..200,
        batch in 1usize..12,
        steps in 1usize..8,
    ) {
        let run = || {
            let mut r = StdRng::seed_from_u64(seed);
            let cfg = Td3Config::new(3, 1);
            let mut agent = Td3Agent::new(cfg.clone(), &mut r);
            let mut ws = TrainWorkspace::new(&cfg, batch);
            let mut tds = Vec::new();
            for step in 0..steps {
                ws.clear();
                for i in 0..batch {
                    let tag = (step * batch + i) as f64 * 0.1;
                    ws.push(&Transition {
                        state: vec![tag.sin(), tag.cos(), -tag.sin()],
                        action: vec![(tag * 0.5).sin()],
                        reward: -1.0 + tag * 0.01,
                        next_state: vec![tag.cos(), -tag.cos(), tag.sin()],
                        done: i == batch - 1,
                    });
                }
                tds.extend_from_slice(agent.train_batched(&mut ws, &mut r));
            }
            let params: Vec<f64> = agent.networks().iter().flat_map(|n| n.params().to_vec()).collect();
            (tds, params, agent.act(&[0.2, -0.4, 0.6]))
        };
        prop_assert_eq!(run(), run());
    }

    /// Text persistence round-trips the policy exactly: the restored agent
    /// makes bit-identical `act_into` stepping decisions on arbitrary
    /// states, even after batched training shaped the weights.
    #[test]
    fn persisted_agent_replays_identical_decisions(
        seed in 0u64..200,
        train_steps in 0usize..6,
        probes in 1usize..10,
    ) {
        let mut r = StdRng::seed_from_u64(seed);
        let cfg = Td3Config::new(5, 1);
        let mut agent = Td3Agent::new(cfg.clone(), &mut r);
        let mut ws = TrainWorkspace::new(&cfg, 8);
        for step in 0..train_steps {
            ws.clear();
            for i in 0..8 {
                let tag = (step * 8 + i) as f64 * 0.07;
                ws.push(&Transition {
                    state: vec![tag.sin(), tag.cos(), tag.tanh(), 0.5, (i % 2) as f64],
                    action: vec![(tag * 0.3).cos()],
                    reward: -1.0 + tag * 0.02,
                    next_state: vec![tag.cos(), tag.sin(), -tag.tanh(), 0.25, ((i + 1) % 2) as f64],
                    done: false,
                });
            }
            agent.train_batched(&mut ws, &mut r);
        }

        let mut buf = Vec::new();
        agent.save_to(&mut buf).unwrap();
        let restored = Td3Agent::load_from(cfg, &mut std::io::BufReader::new(buf.as_slice())).unwrap();

        let mut scratch = agent.act_scratch();
        let mut scratch2 = restored.act_scratch();
        let mut a = vec![0.0; 1];
        let mut b = vec![0.0; 1];
        for p in 0..probes {
            let s = inputs(5, seed.wrapping_add(p as u64));
            agent.act_into(&s, &mut a, &mut scratch);
            restored.act_into(&s, &mut b, &mut scratch2);
            prop_assert_eq!(&a, &b, "probe {} diverged after round-trip", p);
        }
    }
}
