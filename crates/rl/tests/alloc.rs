//! The RL hot-path contract: after construction (agent + workspace +
//! scratch), steady-state policy inference ([`Td3Agent::act_into`] /
//! [`Td3Agent::act_exploring_into`]) and batched training
//! ([`Td3Agent::train_batched`] over a reused [`TrainWorkspace`]) perform
//! **zero** heap allocations — every slab is preallocated, and the GEMM
//! kernels, Adam steps and Polyak updates all work in place.
//!
//! One test only: the counting allocator is process-global, so a second
//! concurrently running test would pollute the count.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlpta_rl::{Td3Agent, Td3Config, TrainWorkspace, Transition};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn act_and_train_allocate_nothing_in_steady_state() {
    let mut rng = StdRng::seed_from_u64(7);
    let cfg = Td3Config::new(5, 1);
    let mut agent = Td3Agent::new(cfg.clone(), &mut rng);
    let batch = 32;
    let mut ws = TrainWorkspace::new(&cfg, batch);
    let mut scratch = agent.act_scratch();
    let mut action = vec![0.0; 1];
    let transitions: Vec<Transition> = (0..batch)
        .map(|i| Transition {
            state: vec![0.1, 0.2, 0.3, 0.4, (i % 2) as f64],
            action: vec![(i as f64 / batch as f64) * 2.0 - 1.0],
            reward: -1.0 + i as f64 * 0.01,
            next_state: vec![0.2, 0.1, 0.4, 0.3, ((i + 1) % 2) as f64],
            done: i % 7 == 0,
        })
        .collect();

    // Warmup: one full gather + train + inference round faults in
    // everything lazily initialized before counting starts.
    ws.clear();
    for t in &transitions {
        ws.push(t);
    }
    agent.train_batched(&mut ws, &mut rng);
    agent.act_into(&transitions[0].state, &mut action, &mut scratch);
    agent.act_exploring_into(&transitions[0].state, &mut action, &mut scratch, &mut rng);

    let before = ALLOCS.load(Ordering::SeqCst);
    // 50 training rounds cover both the critic-only and the delayed
    // actor/target-update branches (policy_delay = 2) several times over,
    // interleaved with greedy and exploring inference calls.
    for round in 0..50 {
        ws.clear();
        for t in &transitions {
            ws.push(t);
        }
        let td = agent.train_batched(&mut ws, &mut rng);
        assert_eq!(td.len(), batch);
        let s = &transitions[round % transitions.len()].state;
        agent.act_into(s, &mut action, &mut scratch);
        agent.act_exploring_into(s, &mut action, &mut scratch, &mut rng);
    }
    let after = ALLOCS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "RL hot path allocated {} time(s) over 50 train/inference rounds",
        after - before
    );
    // The rounds really trained: the step counter advanced and the action
    // is a finite bounded value.
    assert_eq!(agent.train_steps(), 51);
    assert!(action[0].is_finite() && (-1.0..=1.0).contains(&action[0]));
}
