//! The paper's headline idea end-to-end: pre-train the TD3 dual-agent step
//! controller (RL-S) on a few circuits, then watch it outperform the simple
//! and adaptive baselines on a held-out bistable circuit.
//!
//! ```sh
//! cargo run --release --example rl_stepping
//! ```

use rlpta::circuits::{by_name, training_corpus};
use rlpta::core::{PtaSolver, RlStepping};
use rlpta::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kind = PtaKind::dpta();

    // Offline phase: one controller learns across the training corpus. The
    // networks and replay buffers survive `reset()`, so experience
    // accumulates circuit over circuit (§4.1 of the paper).
    let mut rl = RlStepping::new(RlSteppingConfig::new(42));
    println!(
        "pre-training RL-S on the {}-circuit corpus…",
        training_corpus().len()
    );
    for epoch in 0..2 {
        for bench in &training_corpus() {
            let mut solver = PtaSolver::with_config(kind, rl.clone(), PtaConfig::default());
            if solver.solve(&bench.circuit).is_ok() {
                rl = solver.controller_mut().clone();
            }
        }
        println!(
            "  epoch {epoch}: {} transitions collected ({} in the public buffer)",
            rl.transitions_seen(),
            rl.public_buffer_len()
        );
    }

    // Evaluation on a held-out circuit (slowlatch: a strongly-coupled
    // bistable, one of the paper's hard rows).
    let bench = by_name("slowlatch").expect("known benchmark");
    println!("\nevaluating on `{}`:", bench.name);

    let mut simple = PtaSolver::with_config(kind, SimpleStepping::default(), PtaConfig::default());
    let s = simple.solve(&bench.circuit)?;
    let mut adaptive = PtaSolver::with_config(kind, SerStepping::default(), PtaConfig::default());
    let a = adaptive.solve(&bench.circuit)?;
    rl.unfreeze(); // keep learning online during the evaluation run
    let mut rl_solver = PtaSolver::with_config(kind, rl, PtaConfig::default());
    let r = rl_solver.solve(&bench.circuit)?;

    println!(
        "  simple   : {:>4} NR iterations / {:>3} steps",
        s.stats.nr_iterations, s.stats.pta_steps
    );
    println!(
        "  adaptive : {:>4} NR iterations / {:>3} steps",
        a.stats.nr_iterations, a.stats.pta_steps
    );
    println!(
        "  RL-S     : {:>4} NR iterations / {:>3} steps",
        r.stats.nr_iterations, r.stats.pta_steps
    );
    println!(
        "  speedup vs adaptive: {:.2}X iterations, {:.1}% fewer steps",
        a.stats.nr_iterations as f64 / r.stats.nr_iterations as f64,
        100.0 * (1.0 - r.stats.pta_steps as f64 / a.stats.pta_steps as f64)
    );
    Ok(())
}
