//! Quickstart: parse a SPICE deck and find its DC operating point.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rlpta::netlist::parse;
use rlpta::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A diode clamp: the classic "hello world" of nonlinear DC analysis.
    let circuit = parse(
        "diode clamp
         V1 in 0 5
         R1 in out 1k
         D1 out 0 DX
         R2 out 0 10k
         .model DX D(IS=1e-14 N=1.0)
         .end",
    )?;
    println!("parsed `{circuit}`");

    // Direct Newton–Raphson (works here; hard circuits need continuation).
    let newton = DcEngine::builder().newton().build().solve(&circuit)?;
    println!(
        "Newton-Raphson:  v(out) = {:.6} V in {} iterations",
        newton.voltage(&circuit, "out").expect("node exists"),
        newton.stats.nr_iterations
    );

    // Pseudo-transient analysis — the paper's continuation method — reaches
    // the same operating point from the relaxed all-zero state.
    let engine = DcEngine::builder().kind(PtaKind::dpta()).build();
    let solution = engine.solve(&circuit)?;
    println!(
        "DPTA:            v(out) = {:.6} V in {} NR iterations over {} steps",
        solution.voltage(&circuit, "out").expect("node exists"),
        solution.stats.nr_iterations,
        solution.stats.pta_steps
    );
    println!(
        "residual at solution: {:.3e}",
        solution.residual_norm(&circuit)
    );
    Ok(())
}
