//! Solving a multi-stage BJT op-amp bias point with every continuation
//! method the crate offers, comparing their costs — the workload class the
//! paper's introduction motivates (strongly nonlinear, feedback-coupled).
//!
//! ```sh
//! cargo run --release --example opamp_bias
//! ```

use rlpta::circuits::by_name;
use rlpta::core::{GminStepping, SourceStepping};
use rlpta::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = by_name("UA709").expect("UA709 is a known benchmark");
    let circuit = &bench.circuit;
    println!("circuit: {circuit}");

    // 1. Plain Newton (may or may not converge on op-amps; report honestly).
    match DcEngine::builder().newton().build().solve(circuit) {
        Ok(sol) => println!(
            "newton         : converged, {:>5} NR iterations",
            sol.stats.nr_iterations
        ),
        Err(e) => println!("newton         : {e}"),
    }

    // 2. Gmin stepping (a single-stage ladder).
    let gmin = DcEngine::builder()
        .ladder(vec![LadderStage::GminStepping(GminStepping::default())])
        .build()
        .solve(circuit)?;
    println!(
        "gmin stepping  : converged, {:>5} NR iterations over {} stages",
        gmin.stats.nr_iterations, gmin.stats.pta_steps
    );

    // 3. Source stepping.
    let src = DcEngine::builder()
        .ladder(vec![LadderStage::SourceStepping(SourceStepping::default())])
        .build()
        .solve(circuit)?;
    println!(
        "source stepping: converged, {:>5} NR iterations over {} stages",
        src.stats.nr_iterations, src.stats.pta_steps
    );

    // 4. PTA flavours with the two classical controllers.
    for kind in [PtaKind::Pure, PtaKind::dpta(), PtaKind::cepta()] {
        let s = DcEngine::builder()
            .kind(kind)
            .stepping(Stepping::Simple(SimpleStepping::default()))
            .build()
            .solve(circuit)?;
        let a = DcEngine::builder()
            .kind(kind)
            .stepping(Stepping::Ser(SerStepping::default()))
            .build()
            .solve(circuit)?;
        println!(
            "{:<6} simple  : {:>5} NR / {:>3} steps   adaptive: {:>5} NR / {:>3} steps",
            kind.name(),
            s.stats.nr_iterations,
            s.stats.pta_steps,
            a.stats.nr_iterations,
            a.stats.pta_steps
        );
    }

    // All methods must land on the same operating point.
    let reference = DcEngine::builder()
        .ladder(vec![LadderStage::GminStepping(GminStepping::default())])
        .build()
        .solve(circuit)?;
    let check = DcEngine::builder()
        .kind(PtaKind::dpta())
        .build()
        .solve(circuit)?;
    let max_dev = reference
        .x
        .iter()
        .zip(&check.x)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    println!("max deviation between gmin and DPTA solutions: {max_dev:.3e}");
    Ok(())
}
