//! Transient analysis on top of the DC engine: find the operating point of
//! a common-emitter amplifier, then drive its input with a pulse and watch
//! the inverted, amplified output — DC analysis as "the initial solution
//! for transient analysis", exactly the role the paper's introduction
//! assigns it.
//!
//! ```sh
//! cargo run --release --example transient_pulse
//! ```

use rlpta::core::{Transient, Waveform};
use rlpta::netlist::parse;
use rlpta::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = parse(
        "pulsed amplifier
         V1 vcc 0 12
         VIN in 0 0
         RS in b 10k
         R1 vcc b 100k
         R2 b 0 22k
         RC vcc c 4.7k
         RE e 0 1k
         CE e 0 100u
         Q1 c b e QN
         .model QN NPN(IS=1e-15 BF=150)",
    )?;

    // 1. DC operating point (the paper's subject).
    let dc = DcEngine::builder().newton().build().solve(&circuit)?;
    println!(
        "DC operating point: v(c) = {:.3} V, v(b) = {:.3} V  ({} NR iterations)",
        dc.voltage(&circuit, "c").ok_or("node c")?,
        dc.voltage(&circuit, "b").ok_or("node b")?,
        dc.stats.nr_iterations
    );

    // 2. Transient: superimpose a 50 mV pulse on the input bias.
    let tran = Transient::new(2e-3, 2e-6).with_stimulus(
        "VIN",
        Waveform::Pulse {
            v1: 0.0,
            v2: 0.05,
            delay: 0.2e-3,
            rise: 1e-6,
            fall: 1e-6,
            width: 0.8e-3,
            period: 2e-3,
        },
    );
    let points = tran.run(&circuit, Some(&dc.x))?;
    let c_idx = circuit.node_index("c").ok_or("node c")?;

    let vc0 = dc.voltage(&circuit, "c").ok_or("node c")?;
    let during: Vec<f64> = points
        .iter()
        .filter(|p| p.time > 0.5e-3 && p.time < 0.9e-3)
        .map(|p| p.x[c_idx])
        .collect();
    let v_pulse = during.iter().sum::<f64>() / during.len() as f64;
    println!("collector during pulse: {v_pulse:.3} V (rest {vc0:.3} V)");
    println!("inverting gain ≈ {:.1}", (v_pulse - vc0) / 0.05);

    // A coarse ASCII oscillogram of v(c).
    let (vmin, vmax) = points.iter().fold((f64::MAX, f64::MIN), |(lo, hi), p| {
        (lo.min(p.x[c_idx]), hi.max(p.x[c_idx]))
    });
    println!("\nv(c) over 2 ms  [{vmin:.2} V … {vmax:.2} V]");
    let stride = points.len() / 40;
    for p in points.iter().step_by(stride.max(1)) {
        let frac = (p.x[c_idx] - vmin) / (vmax - vmin + 1e-12);
        let col = (frac * 60.0) as usize;
        println!("{:>9.2e} |{}*", p.time, " ".repeat(col));
    }
    Ok(())
}
