//! Initial-parameter prediction (the paper's §3) in miniature: run Bayesian
//! active learning over a small training corpus, then let the Gaussian
//! process propose pseudo-element parameters for an unseen circuit and
//! compare against the default setting.
//!
//! ```sh
//! cargo run --release --example ipp_prediction
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlpta::circuits::{by_name, training_corpus};
use rlpta::core::{predict_params, IppOracle, PtaParams};
use rlpta::gp::{ActiveLearner, ActiveLearnerConfig};
use rlpta::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus: Vec<_> = training_corpus().into_iter().take(16).collect();
    let circuits: Vec<_> = corpus.iter().map(|b| b.circuit.clone()).collect();
    let features: Vec<Vec<f64>> = corpus.iter().map(|b| b.features().to_vec()).collect();
    let flags: Vec<bool> = corpus.iter().map(|b| b.is_bjt).collect();

    let mut learner = ActiveLearner::new(
        features,
        flags,
        ActiveLearnerConfig {
            rounds: 3,
            mle_starts: 8,
            ei_candidates: 96,
            w_range: 2.0,
        },
    );
    let mut oracle = IppOracle::new(&circuits, PtaKind::cepta());
    let mut rng = StdRng::seed_from_u64(7);

    println!("offline: active learning over {} circuits…", corpus.len());
    learner.offline_train(&mut oracle, &mut rng)?;
    println!(
        "  {} solver-in-the-loop evaluations, {} GP samples",
        oracle.evaluations(),
        learner.samples().len()
    );

    // Online: an unseen circuit.
    let bench = by_name("UA733").expect("known benchmark");
    let params = predict_params(&learner, &bench.features().to_vec(), bench.is_bjt, &mut rng)?;
    println!(
        "\npredicted parameters for `{}`: C = {:.3e} F, L = {:.3e} H, tau = {:.3e} s",
        bench.name, params.c_node, params.l_branch, params.tau
    );

    let mut eval = IppOracle::new(std::slice::from_ref(&bench.circuit), PtaKind::cepta());
    let default = eval
        .run_raw(&bench.circuit, PtaParams::default())
        .expect("runs");
    let tuned = eval.run_raw(&bench.circuit, params).expect("runs");
    println!(
        "default z=(1,1,1): {} NR iterations (converged: {})",
        default.nr_iterations, default.converged
    );
    println!(
        "IPP-predicted    : {} NR iterations (converged: {})",
        tuned.nr_iterations, tuned.converged
    );
    if default.converged && tuned.converged {
        println!(
            "speedup: {:.2}X",
            default.nr_iterations as f64 / tuned.nr_iterations as f64
        );
    }
    Ok(())
}
