//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `black_box` and the `criterion_group!`/`criterion_main!` macros — backed
//! by a simple wall-clock timer. No statistics, plots or warm-up phases:
//! each benchmark runs a fixed number of timed iterations and prints the
//! mean. Good enough to keep `cargo bench` compiling and producing numbers
//! offline.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched code.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Conversion accepted wherever criterion takes a benchmark id.
pub trait IntoBenchmarkId {
    /// Converts to a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self.into() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Times closures passed to `iter`.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly and records the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration count (criterion's sample count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1) as u64;
        self
    }

    /// Sets the measurement time; accepted for API compatibility, unused.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, f);
        self
    }

    /// Runs one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_benchmark_id();
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    /// Ends the group (a no-op here).
    pub fn finish(self) {}
}

/// The benchmark harness.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id().to_string();
        self.run_one(&id, f);
        self
    }

    /// Runs a single benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_benchmark_id().to_string();
        self.run_one(&id, |b| f(b, input));
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher {
            iterations: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = if b.iterations > 0 {
            b.elapsed / b.iterations as u32
        } else {
            Duration::ZERO
        };
        println!("bench {id:<48} {per_iter:>12.2?}/iter ({} iters)", b.iterations);
    }
}

/// Declares a benchmark group function, like real criterion's simple form.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benches() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut ran = 0u64;
        group.bench_function("f", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("g", 4), &4u64, |b, &n| {
            b.iter(|| {
                ran += 1;
                black_box(n * 2)
            })
        });
        group.finish();
        assert!(ran >= 3);
    }
}
