//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of proptest the workspace's property tests rely on:
//! the [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, [`collection::vec`], [`any`], the [`proptest!`] runner macro
//! and the `prop_assert*` family. Cases are generated from a deterministic
//! per-test seed so failures reproduce; set `PROPTEST_CASES` to change the
//! case count (default 48).

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Failure modes of a single generated test case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case asked to be skipped (`prop_assume!`).
    Reject(String),
}

impl TestCaseError {
    /// An assertion failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (skipped) case.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Result alias used by helper functions inside `proptest!` bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// String strategies from regex-like patterns. Only the `.{lo,hi}` form the
/// workspace uses is interpreted (random strings of `lo..=hi` chars); any
/// other pattern generates itself literally.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        let parsed = self
            .strip_prefix(".{")
            .and_then(|rest| rest.strip_suffix('}'))
            .and_then(|body| {
                let (lo, hi) = body.split_once(',')?;
                Some((lo.trim().parse::<usize>().ok()?, hi.trim().parse::<usize>().ok()?))
            });
        match parsed {
            Some((lo, hi)) => {
                let len = if lo >= hi { lo } else { rng.gen_range(lo..=hi) };
                (0..len)
                    .map(|_| {
                        // ASCII-heavy with occasional controls and unicode,
                        // excluding newline like a regex `.`.
                        loop {
                            let c = match rng.gen_range(0u32..10) {
                                0..=6 => rng.gen_range(0x20u32..0x7F),
                                7 => rng.gen_range(0x00u32..0x20),
                                8 => rng.gen_range(0x80u32..0x250),
                                _ => rng.gen_range(0x2500u32..0x2600),
                            };
                            if c != b'\n' as u32 {
                                if let Some(ch) = char::from_u32(c) {
                                    return ch;
                                }
                            }
                        }
                    })
                    .collect()
            }
            None => (*self).to_string(),
        }
    }
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Mix magnitudes: plain unit draws plus occasional large/small scale.
        let u: f64 = rng.gen();
        let exp = rng.gen_range(-30i32..30);
        (u - 0.5) * 2.0f64.powi(exp)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy over the whole domain of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<bool>()` etc).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::{rngs::StdRng, Rng};

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of `element` values with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.lo >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..=self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Inclusive length bounds for collection strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end.saturating_sub(1),
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Test-loop driver used by the [`proptest!`] expansion. Not part of the
/// public proptest API, but must be `pub` for the macro to reach it.
pub fn run_proptest_cases<F>(name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let cases: u64 = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48);
    // FNV-1a over the test name gives a stable per-test base seed.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut rejects = 0u64;
    let mut ran = 0u64;
    let mut i = 0u64;
    while ran < cases {
        let mut rng = StdRng::seed_from_u64(seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        match case(&mut rng) {
            Ok(()) => ran += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                assert!(
                    rejects < 4096,
                    "proptest `{name}`: too many rejected cases ({rejects})"
                );
            }
            Err(TestCaseError::Fail(msg)) =>

                panic!("proptest `{name}` failed on case #{i} (seed {seed:#x}): {msg}"),
        }
        i += 1;
    }
}

/// Defines property tests: each function runs its body over many generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            // `#[test]` arrives as one of the captured metas and is
            // re-emitted with the rest, so the generated fn is a test.
            $(#[$meta])*
            fn $name() {
                $crate::run_proptest_cases(stringify!($name), |__proptest_rng| {
                    $(let $pat = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                    let mut __proptest_case = || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    __proptest_case()
                });
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`",
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// The commonly-imported names.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, Just, Strategy,
        TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(n in 1usize..10, x in -2.0f64..2.0) {
            prop_assert!((1..10).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x), "x = {x}");
        }

        #[test]
        fn tuples_and_vecs(v in crate::collection::vec((0usize..5, any::<bool>()), 1..8)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            for (n, _b) in &v {
                prop_assert!(*n < 5);
            }
        }

        #[test]
        fn flat_map_dependent_sizes(v in (2usize..6).prop_flat_map(|n| crate::collection::vec(0.0f64..1.0, n))) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn map_transforms(s in (1usize..4).prop_map(|n| n * 10)) {
            prop_assert!(s == 10 || s == 20 || s == 30);
        }

        #[test]
        fn assume_rejects_some(n in 0usize..10) {
            prop_assume!(n != 3);
            prop_assert!(n != 3);
        }
    }

    #[test]
    fn helper_fn_error_type_compiles() {
        fn helper(ok: bool) -> TestCaseResult {
            prop_assert!(ok, "not ok");
            Ok(())
        }
        assert!(helper(true).is_ok());
        assert!(helper(false).is_err());
    }
}
