//! Minimal std-only work-stealing thread pool for batch workloads.
//!
//! The `rlpta` batch engine fans embarrassingly-parallel jobs (sweep chunks,
//! corpus circuits, raced ladder rungs) over OS threads. The build
//! environment has no crates-io access, so this vendored crate implements
//! exactly the subset the workspace needs:
//!
//! * **scoped batches** — jobs may borrow from the caller's stack
//!   (internally [`std::thread::scope`]), so circuits and configs are shared
//!   by reference, never cloned per worker;
//! * **work stealing from a shared ladder** — workers claim the next
//!   unstarted job with one atomic `fetch_add`, the degenerate (single
//!   global deque) but contention-free form of work stealing: a worker that
//!   finishes early immediately steals the next pending index, so one slow
//!   job never idles the rest of the pool;
//! * **deterministic result ordering** — results come back in job-submission
//!   order, whatever the execution interleaving was;
//! * **panic isolation** — a panicking job is caught ([`std::panic::catch_unwind`])
//!   and surfaced as a structured [`JobPanic`] for *that slot only*; the
//!   pool itself never unwinds, never poisons, and the remaining jobs run to
//!   completion.
//!
//! # Example
//!
//! ```
//! use rlpta_threadpool::ThreadPool;
//!
//! let pool = ThreadPool::new(4);
//! let squares = pool.run((0..8).map(|i| move || i * i).collect::<Vec<_>>());
//! let squares: Vec<_> = squares.into_iter().map(|r| r.unwrap()).collect();
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Index of the pool worker running on this thread, `0` outside a pool.
    static WORKER: Cell<usize> = const { Cell::new(0) };
}

/// Index of the pool worker executing the current job.
///
/// Inside a [`ThreadPool::run`] batch this is the spawn index of the worker
/// thread (`0..threads`). On the calling thread — including the serial
/// fast path that runs batches in-line — it is `0`, so serial and
/// single-worker runs report the same id. The value identifies *scheduling*,
/// not work: consumers that need determinism should key on job ids and
/// treat the worker id as diagnostic.
pub fn current_worker() -> usize {
    WORKER.with(Cell::get)
}

/// A job panicked inside a pool worker. The payload is stringified (panic
/// payloads are `Box<dyn Any>`; `&str` and `String` payloads are preserved,
/// anything else is reported opaquely).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// Index of the job in the submitted batch.
    pub job: usize,
    /// Stringified panic payload.
    pub detail: String,
}

impl fmt::Display for JobPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job {} panicked: {}", self.job, self.detail)
    }
}

impl std::error::Error for JobPanic {}

fn payload_to_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Number of worker threads the host offers, with a floor of 1. Used by
/// callers that take "0 = auto" thread counts.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// A fixed-width scoped thread pool.
///
/// The pool is a *policy object*: it holds only the worker count. Each
/// [`ThreadPool::run`] call spawns scoped workers for the duration of the
/// batch, which keeps the crate free of `unsafe` lifetime laundering while
/// still amortizing well (batch jobs here are milliseconds-to-seconds
/// solver runs, not microsecond tasks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// A pool with `threads` workers; `0` means [`available_threads`].
    pub fn new(threads: usize) -> Self {
        Self {
            threads: if threads == 0 {
                available_threads()
            } else {
                threads
            },
        }
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every job, returning per-job results **in submission order**.
    ///
    /// A job that panics yields `Err(JobPanic)` in its slot; every other job
    /// still runs. With one worker (or one job) the batch degrades to an
    /// in-order serial loop on the calling thread — same results, no spawn.
    pub fn run<T, F>(&self, jobs: Vec<F>) -> Vec<Result<T, JobPanic>>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = jobs.len();
        let run_one = |i: usize, job: F| {
            catch_unwind(AssertUnwindSafe(job)).map_err(|p| JobPanic {
                job: i,
                detail: payload_to_string(p),
            })
        };
        if self.threads <= 1 || n <= 1 {
            return jobs
                .into_iter()
                .enumerate()
                .map(|(i, job)| run_one(i, job))
                .collect();
        }

        // Job slots: taken exactly once by whichever worker claims the index.
        let slots: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let results: Vec<Mutex<Option<Result<T, JobPanic>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            let (slots, results, next, run_one) = (&slots, &results, &next, &run_one);
            for w in 0..self.threads.min(n) {
                scope.spawn(move || {
                    WORKER.with(|c| c.set(w));
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        // Locks are uncontended by construction (each index is
                        // claimed once) and never poisoned (jobs are caught).
                        let job = slots[i]
                            .lock()
                            .expect("job slot lock")
                            .take()
                            .expect("job claimed twice");
                        let out = run_one(i, job);
                        *results[i].lock().expect("result slot lock") = Some(out);
                    }
                });
            }
        });

        results
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result lock")
                    .expect("every claimed job stores a result")
            })
            .collect()
    }

    /// Parallel map with deterministic output order; panics in `f` surface
    /// as `Err(JobPanic)` per item.
    pub fn map<I, T, U, F>(&self, items: I, f: F) -> Vec<Result<U, JobPanic>>
    where
        I: IntoIterator<Item = T>,
        T: Send,
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        let f = &f;
        self.run(
            items
                .into_iter()
                .map(|item| move || f(item))
                .collect::<Vec<_>>(),
        )
    }
}

impl Default for ThreadPool {
    /// A pool sized to the host ([`available_threads`]).
    fn default() -> Self {
        Self::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn results_in_submission_order() {
        let pool = ThreadPool::new(4);
        // Reverse sleeps so late jobs finish first if ordering were by
        // completion.
        let jobs: Vec<_> = (0..16)
            .map(|i| {
                move || {
                    std::thread::sleep(std::time::Duration::from_millis((16 - i) % 4));
                    i
                }
            })
            .collect();
        let out: Vec<_> = pool.run(jobs).into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let serial = ThreadPool::new(1);
        let parallel = ThreadPool::new(8);
        let mk = || (0..32).map(|i| move || i * 7 + 1).collect::<Vec<_>>();
        let a: Vec<_> = serial.run(mk()).into_iter().map(|r| r.unwrap()).collect();
        let b: Vec<_> = parallel.run(mk()).into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn panic_is_isolated_to_its_slot() {
        let pool = ThreadPool::new(3);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..6usize)
            .map(|i| {
                Box::new(move || {
                    if i == 2 {
                        panic!("boom {i}");
                    }
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let out = pool.run(jobs);
        for (i, r) in out.iter().enumerate() {
            if i == 2 {
                let e = r.as_ref().unwrap_err();
                assert_eq!(e.job, 2);
                assert!(e.detail.contains("boom"), "{e}");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i);
            }
        }
    }

    #[test]
    fn pool_survives_panics_for_later_batches() {
        let pool = ThreadPool::new(2);
        let first = pool.run(vec![|| panic!("die"), || 1]);
        assert!(first[0].is_err());
        let second: Vec<_> = pool
            .run(vec![|| 10, || 20])
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(second, vec![10, 20]);
    }

    #[test]
    fn jobs_borrow_from_caller() {
        let data = [1.0f64, 2.0, 3.0];
        let pool = ThreadPool::new(2);
        let out: Vec<_> = pool
            .map(0..data.len(), |i| data[i] * 2.0)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(out, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn zero_threads_means_auto() {
        assert!(ThreadPool::new(0).threads() >= 1);
        assert!(ThreadPool::default().threads() >= 1);
    }

    #[test]
    fn worker_ids_bounded_and_zero_on_caller() {
        assert_eq!(current_worker(), 0);
        let pool = ThreadPool::new(3);
        let ids: Vec<_> = pool
            .map(0..16, |_| {
                std::thread::sleep(std::time::Duration::from_millis(1));
                current_worker()
            })
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert!(ids.iter().all(|&w| w < 3));
        // Serial fast path stays on the caller thread: id 0 everywhere.
        let serial = ThreadPool::new(1);
        let ids: Vec<_> = serial
            .map(0..4, |_| current_worker())
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(ids, vec![0, 0, 0, 0]);
    }

    #[test]
    fn empty_batch_is_fine() {
        let pool = ThreadPool::new(4);
        let out = pool.run(Vec::<fn() -> ()>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn all_workers_participate_under_load() {
        // Not a strict guarantee, but with 4 workers and staggered jobs the
        // claim counter must be fully drained.
        let started = AtomicBool::new(false);
        let pool = ThreadPool::new(4);
        let jobs: Vec<_> = (0..64)
            .map(|i| {
                let started = &started;
                move || {
                    started.store(true, Ordering::Relaxed);
                    i
                }
            })
            .collect();
        let out = pool.run(jobs);
        assert_eq!(out.len(), 64);
        assert!(started.load(Ordering::Relaxed));
    }
}
