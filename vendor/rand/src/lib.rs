//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! re-implements exactly the API surface the workspace uses: [`RngCore`],
//! [`Rng`] (with `gen`, `gen_range`, `gen_bool`), [`SeedableRng`] and
//! [`rngs::StdRng`]. The generator is xoshiro256++ seeded through SplitMix64,
//! which is deterministic across platforms — seeds reproduce bit-for-bit.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunk = self.next_u64().to_le_bytes();
        let mut used = 0;
        for b in dest.iter_mut() {
            if used == 8 {
                chunk = self.next_u64().to_le_bytes();
                used = 0;
            }
            *b = chunk[used];
            used += 1;
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution of real `rand`).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value can be drawn uniformly from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty, matching real `rand`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as StandardSample>::standard_sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as StandardSample>::standard_sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
range_float!(f32, f64);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the whole domain of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Reproducible construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from OS "entropy" — here a fixed seed, which keeps
    /// the offline stand-in deterministic.
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x9E37_79B9_7F4A_7C15)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ seeded via
    /// SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// The commonly-imported names.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..30);
            assert!((3..30).contains(&v));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(0i64..=5);
            assert!((0..=5).contains(&i));
        }
    }

    #[test]
    fn unit_floats() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn works_through_dyn_rng_core() {
        let mut rng = StdRng::seed_from_u64(4);
        let dynr: &mut dyn crate::RngCore = &mut rng;
        let v = dynr.gen_range(0usize..10);
        assert!(v < 10);
    }
}
